/**
 * @file
 * The regression gate: compare a candidate baseline against a reference,
 * cell by cell, and decide whether the candidate is allowed to land.
 *
 * A cell only counts as a regression when BOTH hold:
 *  - the median slowdown exceeds the minimum-effect threshold
 *    (default 5%), so microsecond jitter on tiny graphs can't fail CI; and
 *  - a Mann-Whitney U test on the raw trial vectors rejects "same
 *    distribution" at the configured significance level (default 0.05),
 *    so a single unlucky trial can't either.
 *
 * The same two-sided criterion, mirrored, reports improvements.  Cells
 * present on only one side are reported as new/missing; cells that
 * completed in the reference but DNF'd in the candidate are regressions
 * (a kernel that stopped finishing is worse than a slow one).
 *
 * Note on sample sizes: with fewer than 4 trials per side the
 * Mann-Whitney test cannot reach p < 0.05 even for disjoint samples, so
 * the gate can never flag anything.  Record baselines with >= 5 trials.
 */
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "gm/perf/baseline.hh"
#include "gm/support/status.hh"

namespace gm::perf
{

/** Per-cell comparison outcome. */
enum class Verdict
{
    kUnchanged = 0,
    kImproved,
    kRegressed,
    kNew,     ///< in candidate only
    kMissing, ///< in reference only, or completed -> DNF
};

/** Stable long name ("regressed", ...), used in reports. */
std::string to_string(Verdict verdict);

/** Gate thresholds. */
struct GateOptions
{
    /** Significance level for the Mann-Whitney test. */
    double alpha = 0.05;
    /** Minimum relative median change to count (0.05 = 5%). */
    double min_effect = 0.05;
    /** Seed for the bootstrap CIs included in the report. */
    std::uint64_t seed = 2020;
    /** Bootstrap resamples per cell (0 disables CI computation). */
    int bootstrap_resamples = 1000;
    /** Treat missing cells (reference-only / completed -> DNF) as
     *  gate failures too. */
    bool fail_on_missing = false;
};

/** One row of the comparison. */
struct CellComparison
{
    std::string mode;
    std::string framework;
    std::string kernel;
    std::string graph;
    Verdict verdict = Verdict::kUnchanged;

    double ref_median = 0;
    double cand_median = 0;
    /** (cand - ref) / ref; 0 when undefined. */
    double change = 0;
    /** Mann-Whitney two-sided p-value; 1 when not applicable. */
    double p_value = 1;
    /** Bootstrap CI of the candidate median (when enabled). */
    double cand_ci_lo = 0;
    double cand_ci_hi = 0;
    /** Trial counts on each side. */
    int ref_trials = 0;
    int cand_trials = 0;
    std::string note; ///< e.g. "DNF (timeout) in candidate"
};

/** The whole comparison plus its verdict tallies. */
struct GateReport
{
    support::EnvFingerprint ref_fingerprint;
    support::EnvFingerprint cand_fingerprint;
    GateOptions options;
    std::vector<CellComparison> cells;

    int improved = 0;
    int unchanged = 0;
    int regressed = 0;
    int added = 0;
    int missing = 0;

    /** True when the gate should fail the build. */
    bool
    failed() const
    {
        return regressed > 0 ||
               (options.fail_on_missing && missing > 0);
    }
};

/** Compare @p cand against @p ref under @p opts. */
GateReport compare_baselines(const Baseline& ref, const Baseline& cand,
                             const GateOptions& opts = {});

/** Render the human-readable comparison table + summary line. */
void print_report(std::ostream& os, const GateReport& report);

/** Write the machine-readable report: one JSON line per cell plus a
 *  trailing summary record. */
support::Status write_report_json(const std::string& path,
                                  const GateReport& report);

/** Process exit code for the gate: 0 pass, 1 regression. */
int gate_exit_code(const GateReport& report);

} // namespace gm::perf
