#include "gm/gapref/kernels.hh"

#include <algorithm>

#include "gm/graph/frontier.hh"
#include "gm/par/atomics.hh"
#include "gm/par/parallel_for.hh"
#include "gm/support/bitmap.hh"
#include "gm/support/sliding_queue.hh"

namespace gm::gapref
{

namespace
{

/**
 * Forward phase of Brandes: the shared level-synchronous sweep
 * (gm::graph::level_sync_sweep) plus the two BC-specific actions on each
 * shortest-path edge — marking it in a bitmap indexed by out-edge slot
 * (the GAPBS optimization the paper credits for beating Galois on the
 * backward pass) and accumulating shortest-path counts.
 */
void
brandes_forward(const CSRGraph& g, vid_t source, std::vector<vid_t>& depth,
                std::vector<double>& path_counts, Bitmap& succ,
                SlidingQueue<vid_t>& queue,
                std::vector<std::size_t>& depth_index)
{
    path_counts[source] = 1;
    graph::level_sync_sweep(
        g, source, depth, queue, depth_index,
        [&](vid_t u, eid_t e, vid_t v) {
            succ.set_bit_atomic(static_cast<std::size_t>(e));
            par::atomic_add_float(path_counts[v], path_counts[u]);
        });
}

} // namespace

std::vector<score_t>
bc(const CSRGraph& g, const std::vector<vid_t>& sources)
{
    const vid_t n = g.num_vertices();
    const std::size_t m = static_cast<std::size_t>(g.num_edges_directed());
    std::vector<score_t> scores(static_cast<std::size_t>(n), 0);
    std::vector<vid_t> depth(static_cast<std::size_t>(n));
    std::vector<double> path_counts(static_cast<std::size_t>(n));
    std::vector<double> deltas(static_cast<std::size_t>(n));
    Bitmap succ(m);
    std::vector<std::size_t> depth_index;
    // Flat storage of successive frontiers, addressed by depth_index.
    std::vector<vid_t> frontiers;

    const auto& offsets = g.out_offsets();
    const auto& dests = g.out_destinations();

    for (vid_t source : sources) {
        std::fill(depth.begin(), depth.end(), kInvalidVid);
        std::fill(path_counts.begin(), path_counts.end(), 0.0);
        succ.reset();
        SlidingQueue<vid_t> queue(static_cast<std::size_t>(n) + 1);
        brandes_forward(g, source, depth, path_counts, succ, queue,
                        depth_index);
        // The queue's storage now holds every frontier back-to-back.
        frontiers.assign(queue.begin() - (depth_index.back()), queue.begin());

        std::fill(deltas.begin(), deltas.end(), 0.0);
        // Walk levels deepest-first, pulling dependency from successors.
        for (int d = static_cast<int>(depth_index.size()) - 2; d >= 0; --d) {
            const std::size_t lo = depth_index[static_cast<std::size_t>(d)];
            const std::size_t hi =
                depth_index[static_cast<std::size_t>(d) + 1];
            par::parallel_for<std::size_t>(lo, hi, [&](std::size_t i) {
                const vid_t u = frontiers[i];
                double delta_u = 0;
                for (eid_t e = offsets[u]; e < offsets[u + 1]; ++e) {
                    if (succ.get_bit(static_cast<std::size_t>(e))) {
                        const vid_t v = dests[e];
                        delta_u += (path_counts[u] / path_counts[v]) *
                                   (1 + deltas[v]);
                    }
                }
                deltas[u] = delta_u;
                if (u != source)
                    scores[u] += delta_u;
            });
        }
    }

    // Normalize by the largest score, matching GAPBS output semantics.
    const score_t biggest = par::parallel_reduce<vid_t, score_t>(
        0, n, 0, [&](vid_t v) { return scores[v]; },
        [](score_t a, score_t b) { return std::max(a, b); });
    if (biggest > 0) {
        par::parallel_for<vid_t>(0, n,
                                 [&](vid_t v) { scores[v] /= biggest; },
                                 par::Schedule::kStatic);
    }
    return scores;
}

} // namespace gm::gapref
