#include "gm/gapref/kernels.hh"

#include <algorithm>

#include "gm/obs/trace.hh"
#include "gm/par/atomics.hh"
#include "gm/par/parallel_for.hh"
#include "gm/support/bitmap.hh"
#include "gm/support/sliding_queue.hh"

namespace gm::gapref
{

namespace
{

/**
 * One bottom-up (pull) step: every unvisited vertex scans its in-edges for a
 * parent in the current frontier.  Returns the number of newly awakened
 * vertices.
 */
std::int64_t
bu_step(const CSRGraph& g, std::vector<vid_t>& parent, const Bitmap& front,
        Bitmap& next)
{
    return par::parallel_reduce<vid_t, std::int64_t>(
        0, g.num_vertices(), 0,
        [&](vid_t v) -> std::int64_t {
            if (parent[v] >= 0)
                return 0;
            for (vid_t u : g.in_neigh(v)) {
                if (front.get_bit(static_cast<std::size_t>(u))) {
                    parent[v] = u;
                    next.set_bit_atomic(static_cast<std::size_t>(v));
                    return 1;
                }
            }
            return 0;
        },
        [](std::int64_t a, std::int64_t b) { return a + b; });
}

/**
 * One top-down (push) step: frontier vertices claim their unvisited
 * out-neighbors via CAS.  Returns the degree sum of the claimed vertices
 * (the GAPBS "scout count" used by the direction switch).
 *
 * The CAS race decides only *membership* deterministically (v is claimed
 * iff some frontier vertex reaches it) — which u wins is timing-dependent,
 * so a repair pass afterwards (td_repair_parents) rewrites each claimed
 * vertex's parent to its minimum frontier in-neighbor.  The scout count is
 * already deterministic: -curr is v's encoded degree regardless of which
 * lane claimed it.
 */
std::int64_t
td_step(const CSRGraph& g, std::vector<vid_t>& parent,
        SlidingQueue<vid_t>& queue)
{
    std::vector<std::int64_t> lane_scout(
        static_cast<std::size_t>(par::num_threads()), 0);
    const vid_t* frontier = queue.begin();
    const std::size_t frontier_size = queue.size();
    par::parallel_lanes([&](int lane, int lanes) {
        QueueBuffer<vid_t> local(queue);
        std::int64_t scout = 0;
        // Dynamic interleave keeps hub-heavy frontiers balanced.
        for (std::size_t i = lane; i < frontier_size;
             i += static_cast<std::size_t>(lanes)) {
            const vid_t u = frontier[i];
            for (vid_t v : g.out_neigh(u)) {
                vid_t curr = par::atomic_load(parent[v]);
                if (curr < 0) {
                    if (par::compare_and_swap(parent[v], curr, u)) {
                        local.push_back(v);
                        scout += -curr;
                    }
                }
            }
        }
        local.flush();
        lane_scout[static_cast<std::size_t>(lane)] = scout;
    });
    std::int64_t total = 0;
    for (std::int64_t s : lane_scout)
        total += s;
    return total;
}

/**
 * Rewrite each newly claimed vertex's parent to its minimum in-neighbor
 * whose bit is set in @p front, making the top-down parent choice
 * order-independent.
 *
 * @p front may carry stale bits from earlier steps: a stale bit marks a
 * vertex from a *previous* frontier, and every out-neighbor of a previous
 * frontier is already visited — so a stale u with an edge to a vertex
 * claimed this step cannot exist, and the min is always taken over true
 * current-frontier in-neighbors.  (The same invariant is what lets
 * bu_step tolerate accumulated bits.)
 */
void
td_repair_parents(const CSRGraph& g, std::vector<vid_t>& parent,
                  const Bitmap& front, const vid_t* claimed,
                  std::size_t count)
{
    const vid_t none = g.num_vertices();
    par::parallel_for<std::size_t>(0, count, [&](std::size_t i) {
        const vid_t v = claimed[i];
        vid_t best = none;
        for (vid_t u : g.in_neigh(v)) {
            if (u < best && front.get_bit(static_cast<std::size_t>(u)))
                best = u;
        }
        if (best != none)
            parent[v] = best;
    });
}

void
queue_to_bitmap(const SlidingQueue<vid_t>& queue, Bitmap& bitmap)
{
    const vid_t* data = queue.begin();
    const std::size_t size = queue.size();
    par::parallel_for<std::size_t>(0, size, [&](std::size_t i) {
        bitmap.set_bit_atomic(static_cast<std::size_t>(data[i]));
    });
}

void
bitmap_to_queue(const CSRGraph& g, const Bitmap& bitmap,
                SlidingQueue<vid_t>& queue)
{
    par::parallel_lanes([&](int lane, int lanes) {
        QueueBuffer<vid_t> local(queue);
        const vid_t n = g.num_vertices();
        const vid_t block = (n + lanes - 1) / lanes;
        const vid_t lo = block * lane;
        const vid_t hi = std::min<vid_t>(lo + block, n);
        for (vid_t v = lo; v < hi; ++v)
            if (bitmap.get_bit(static_cast<std::size_t>(v)))
                local.push_back(v);
        local.flush();
    });
    queue.slide_window();
}

} // namespace

std::vector<vid_t>
bfs(const CSRGraph& g, vid_t source, int alpha, int beta)
{
    const vid_t n = g.num_vertices();
    // GAPBS trick: unvisited vertices hold -out_degree (or -1), so a
    // successful top-down CAS also yields the scout contribution.
    std::vector<vid_t> parent(static_cast<std::size_t>(n));
    par::parallel_for<vid_t>(0, n, [&](vid_t v) {
        const eid_t d = g.out_degree(v);
        parent[v] = d != 0 ? static_cast<vid_t>(-d) : -1;
    });
    parent[source] = source;

    SlidingQueue<vid_t> queue(static_cast<std::size_t>(n) + 1);
    queue.push_back(source);
    queue.slide_window();
    Bitmap curr(static_cast<std::size_t>(n));
    Bitmap front(static_cast<std::size_t>(n));
    curr.reset();
    front.reset();

    std::int64_t edges_to_check = g.num_edges_directed();
    std::int64_t scout_count = g.out_degree(source);

    while (!queue.empty()) {
        if (scout_count > edges_to_check / alpha) {
            // Switch to bottom-up until the frontier shrinks again.
            obs::counter_add("bfs.switches", 1);
            queue_to_bitmap(queue, front);
            std::int64_t awake_count = queue.size();
            std::int64_t old_awake_count;
            do {
                old_awake_count = awake_count;
                curr.reset();
                awake_count = bu_step(g, parent, front, curr);
                front.swap(curr);
                obs::counter_add("iterations", 1);
                obs::counter_add("bfs.bu_steps", 1);
                obs::counter_max("frontier_peak",
                                 static_cast<std::uint64_t>(awake_count));
            } while (awake_count >= old_awake_count ||
                     awake_count > n / beta);
            queue.reset();
            bitmap_to_queue(g, front, queue);
            scout_count = 1;
        } else {
            obs::counter_max("frontier_peak",
                             static_cast<std::uint64_t>(queue.size()));
            edges_to_check -= scout_count;
            queue_to_bitmap(queue, front);
            scout_count = td_step(g, parent, queue);
            queue.slide_window();
            td_repair_parents(g, parent, front, queue.begin(),
                              queue.size());
            obs::counter_add("iterations", 1);
            obs::counter_add("bfs.td_steps", 1);
            obs::counter_add("edges_traversed",
                             static_cast<std::uint64_t>(
                                 scout_count > 0 ? scout_count : 0));
        }
    }

    par::parallel_for<vid_t>(0, n, [&](vid_t v) {
        if (parent[v] < 0)
            parent[v] = kInvalidVid;
    });
    return parent;
}

} // namespace gm::gapref
