/**
 * @file
 * GAP Benchmark Suite reference kernels.
 *
 * These are faithful ports of the GAPBS reference implementations the paper
 * uses as its baseline: direction-optimizing BFS, delta-stepping SSSP with
 * the bucket-fusion optimization (which the paper notes was upstreamed from
 * GraphIt), PageRank via Jacobi SpMV, Afforest connected components, Brandes
 * betweenness centrality with successor bitmaps, and order-invariant
 * triangle counting with a heuristic-controlled relabel.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "gm/graph/csr.hh"

namespace gm::gapref
{

using graph::CSRGraph;
using graph::WCSRGraph;

/**
 * Direction-optimizing breadth-first search (Beamer et al.).
 *
 * @return Parent array: parent[source] == source, kInvalidVid if unreached.
 * @param alpha Top-down -> bottom-up switch factor (default per GAPBS).
 * @param beta  Bottom-up -> top-down switch factor.
 */
std::vector<vid_t> bfs(const CSRGraph& graph, vid_t source, int alpha = 15,
                       int beta = 18);

/**
 * Delta-stepping SSSP with bucket fusion.
 *
 * @param delta Bucket width; GAP allows tuning this per graph.
 * @return Distance array; kInfWeight when unreachable.
 */
std::vector<weight_t> sssp(const WCSRGraph& graph, vid_t source,
                           weight_t delta);

/**
 * PageRank via Jacobi-style SpMV (pull over incoming edges).
 *
 * @param damping   Damping factor (0.85 per GAP).
 * @param tolerance L1 convergence threshold (1e-4 per GAP).
 * @param max_iters Iteration cap (20 per GAPBS defaults).
 */
std::vector<score_t> pagerank(const CSRGraph& graph, double damping = 0.85,
                              double tolerance = 1e-4, int max_iters = 20);

/**
 * Gauss–Seidel PageRank: the replacement the paper recommends for the GAP
 * reference ("switching to a Gauss-Seidel approach for PR is far more
 * practical, and the results of this study demonstrate the performance
 * advantages of that approach").  Kept alongside the Jacobi reference so
 * the ablation benches can quantify that recommendation.
 */
std::vector<score_t> pagerank_gauss_seidel(const CSRGraph& graph,
                                           double damping = 0.85,
                                           double tolerance = 1e-4,
                                           int max_iters = 100);

/**
 * Afforest connected components (Sutton et al.): subgraph sampling +
 * skipping the largest intermediate component.  Computes weakly connected
 * components on directed graphs.
 *
 * @param neighbor_rounds Sampling rounds over the first neighbors.
 */
std::vector<vid_t> cc_afforest(const CSRGraph& graph,
                               int neighbor_rounds = 2);

/**
 * Approximate betweenness centrality (Brandes), @p num_sources roots.
 * Scores are normalized by the largest score, matching GAPBS.
 */
std::vector<score_t> bc(const CSRGraph& graph,
                        const std::vector<vid_t>& sources);

/**
 * Order-invariant triangle counting; relabels by degree first when the
 * sampling heuristic says the graph is skewed enough to repay it.
 * The input must be undirected.
 */
std::uint64_t tc(const CSRGraph& graph);

/** The relabel heuristic used by tc(); exposed for tests/ablations. */
bool tc_worth_relabeling(const CSRGraph& graph, std::uint64_t seed = 10);

/** Triangle counting without the relabel heuristic (ablation hook). */
std::uint64_t tc_no_relabel(const CSRGraph& graph);

} // namespace gm::gapref
