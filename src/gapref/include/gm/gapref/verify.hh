/**
 * @file
 * GAP-spec result verifiers and the serial reference oracles behind them.
 *
 * The paper recommends "more formally specified verification and validation
 * procedures for GAP"; this module is that recommendation implemented.  The
 * benchmark harness refuses to record a timing whose result fails these
 * checks, and the test suite uses the same oracles for cross-framework
 * agreement.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gm/graph/csr.hh"

namespace gm::gapref
{

using graph::CSRGraph;
using graph::WCSRGraph;

/** Serial BFS depths (kInvalidVid when unreachable). */
std::vector<vid_t> serial_bfs_depths(const CSRGraph& graph, vid_t source);

/** Serial Dijkstra distances (kInfWeight when unreachable). */
std::vector<weight_t> serial_dijkstra(const WCSRGraph& graph, vid_t source);

/** Serial union-find weak components: label = smallest vertex id in the
 *  component. */
std::vector<vid_t> serial_components(const CSRGraph& graph);

/** Serial exact Brandes centrality, normalized by the max score. */
std::vector<score_t> serial_brandes(const CSRGraph& graph,
                                    const std::vector<vid_t>& sources);

/** Serial triangle count (undirected input). */
std::uint64_t serial_tc(const CSRGraph& graph);

/** Check a BFS parent array against the spec. */
bool verify_bfs(const CSRGraph& graph, vid_t source,
                const std::vector<vid_t>& parent,
                std::string* error = nullptr);

/** Check SSSP distances against serial Dijkstra. */
bool verify_sssp(const WCSRGraph& graph, vid_t source,
                 const std::vector<weight_t>& dist,
                 std::string* error = nullptr);

/** Check PageRank scores: one extra Jacobi step must have a small residual
 *  (accepts both Jacobi and Gauss–Seidel fixed points). */
bool verify_pagerank(const CSRGraph& graph,
                     const std::vector<score_t>& scores,
                     double damping = 0.85, double tolerance = 1e-4,
                     std::string* error = nullptr);

/** Check CC labels: constant across every edge, and exactly as many
 *  distinct labels as true components. */
bool verify_cc(const CSRGraph& graph, const std::vector<vid_t>& comp,
               std::string* error = nullptr);

/** Check BC scores against serial Brandes on the same sources. */
bool verify_bc(const CSRGraph& graph, const std::vector<vid_t>& sources,
               const std::vector<score_t>& scores,
               std::string* error = nullptr);

/** Check a triangle count against the serial oracle. */
bool verify_tc(const CSRGraph& graph, std::uint64_t count,
               std::string* error = nullptr);

} // namespace gm::gapref
