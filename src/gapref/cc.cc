#include "gm/gapref/kernels.hh"

#include <algorithm>
#include <unordered_map>

#include "gm/par/atomics.hh"
#include "gm/par/parallel_for.hh"
#include "gm/support/rng.hh"

namespace gm::gapref
{

namespace
{

/** Afforest hooking step (Sutton et al. / GAPBS Link). */
void
link(vid_t u, vid_t v, std::vector<vid_t>& comp)
{
    vid_t p1 = par::atomic_load(comp[u]);
    vid_t p2 = par::atomic_load(comp[v]);
    while (p1 != p2) {
        const vid_t high = std::max(p1, p2);
        const vid_t low = std::min(p1, p2);
        const vid_t p_high = par::atomic_load(comp[high]);
        if (p_high == low ||
            (p_high == high && par::compare_and_swap(comp[high], high, low)))
            break;
        p1 = par::atomic_load(comp[par::atomic_load(comp[high])]);
        p2 = par::atomic_load(comp[low]);
    }
}

/** Full pointer-jumping compression. */
void
compress(std::vector<vid_t>& comp, vid_t n)
{
    par::parallel_for<vid_t>(0, n, [&](vid_t v) {
        while (comp[v] != comp[comp[v]])
            comp[v] = comp[comp[v]];
    }, par::Schedule::kStatic);
}

/** Most frequent component id in a small random sample. */
vid_t
sample_frequent_element(const std::vector<vid_t>& comp, vid_t n,
                        int num_samples = 1024)
{
    std::unordered_map<vid_t, int> counts;
    Xoshiro256 rng(17);
    for (int i = 0; i < num_samples; ++i)
        ++counts[comp[static_cast<vid_t>(rng.next_bounded(n))]];
    auto best = std::max_element(
        counts.begin(), counts.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    return best->first;
}

} // namespace

std::vector<vid_t>
cc_afforest(const CSRGraph& g, int neighbor_rounds)
{
    const vid_t n = g.num_vertices();
    std::vector<vid_t> comp(static_cast<std::size_t>(n));
    par::parallel_for<vid_t>(0, n, [&](vid_t v) { comp[v] = v; },
                             par::Schedule::kStatic);

    // Subgraph sampling: union along each vertex's first few neighbors.
    for (int r = 0; r < neighbor_rounds; ++r) {
        par::parallel_for<vid_t>(0, n, [&](vid_t u) {
            const auto neigh = g.out_neigh(u);
            if (static_cast<eid_t>(r) < static_cast<eid_t>(neigh.size()))
                link(u, graph::target(neigh[r]), comp);
        });
        compress(comp, n);
    }

    // Skip the giant component; finish everything else exhaustively.
    const vid_t giant = sample_frequent_element(comp, n);
    par::parallel_for<vid_t>(0, n, [&](vid_t u) {
        if (comp[u] == giant)
            return;
        const auto neigh = g.out_neigh(u);
        for (std::size_t i = static_cast<std::size_t>(neighbor_rounds);
             i < neigh.size(); ++i) {
            link(u, graph::target(neigh[i]), comp);
        }
        if (g.is_directed()) {
            // Weak connectivity also follows incoming edges.
            for (vid_t v : g.in_neigh(u))
                link(u, v, comp);
        }
    });
    compress(comp, n);
    return comp;
}

} // namespace gm::gapref
