#include "gm/gapref/kernels.hh"

#include <algorithm>

#include "gm/graph/builder.hh"
#include "gm/par/parallel_for.hh"
#include "gm/support/rng.hh"

namespace gm::gapref
{

namespace
{

/**
 * GAPBS OrderedCount: counts each triangle once (u > v > w) by merging
 * sorted adjacency lists.  Requires an undirected graph with sorted,
 * deduplicated neighborhoods.
 */
std::uint64_t
ordered_count(const CSRGraph& g)
{
    return par::parallel_reduce<vid_t, std::uint64_t>(
        0, g.num_vertices(), 0,
        [&](vid_t u) -> std::uint64_t {
            std::uint64_t local = 0;
            const auto u_neigh = g.out_neigh(u);
            for (vid_t v : u_neigh) {
                if (v > u)
                    break;
                auto it = u_neigh.begin();
                for (vid_t w : g.out_neigh(v)) {
                    if (w > v)
                        break;
                    while (*it < w)
                        ++it;
                    if (w == *it)
                        ++local;
                }
            }
            return local;
        },
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

} // namespace

bool
tc_worth_relabeling(const CSRGraph& g, std::uint64_t seed)
{
    const std::int64_t average_degree =
        g.num_edges_directed() / std::max<vid_t>(g.num_vertices(), 1);
    if (average_degree < 10)
        return false;
    const vid_t n = g.num_vertices();
    const int num_samples =
        static_cast<int>(std::min<std::int64_t>(1000, n));
    std::vector<eid_t> samples(static_cast<std::size_t>(num_samples));
    Xoshiro256 rng(seed);
    std::int64_t sample_total = 0;
    for (int i = 0; i < num_samples; ++i) {
        samples[i] = g.out_degree(static_cast<vid_t>(rng.next_bounded(n)));
        sample_total += samples[i];
    }
    std::sort(samples.begin(), samples.end());
    const double sample_average =
        static_cast<double>(sample_total) / num_samples;
    const double sample_median =
        static_cast<double>(samples[static_cast<std::size_t>(num_samples / 2)]);
    // Skewed enough that the relabel pays for itself.
    return sample_average / 1.3 > sample_median;
}

std::uint64_t
tc_no_relabel(const CSRGraph& g)
{
    return ordered_count(g);
}

std::uint64_t
tc(const CSRGraph& g)
{
    if (tc_worth_relabeling(g)) {
        // Relabel time is charged to the kernel, per the GAP rules.
        const CSRGraph relabeled = graph::relabel_by_degree(g);
        return ordered_count(relabeled);
    }
    return ordered_count(g);
}

} // namespace gm::gapref
