#include "gm/gapref/kernels.hh"

#include <cmath>

#include "gm/obs/trace.hh"
#include "gm/par/atomics.hh"
#include "gm/par/parallel_for.hh"

namespace gm::gapref
{

std::vector<score_t>
pagerank(const CSRGraph& g, double damping, double tolerance, int max_iters)
{
    const vid_t n = g.num_vertices();
    const score_t init_score = score_t{1} / n;
    const score_t base_score = (score_t{1} - damping) / n;
    std::vector<score_t> scores(static_cast<std::size_t>(n), init_score);
    std::vector<score_t> outgoing_contrib(static_cast<std::size_t>(n), 0);

    for (int iter = 0; iter < max_iters; ++iter) {
        par::parallel_for<vid_t>(0, n, [&](vid_t v) {
            const eid_t d = g.out_degree(v);
            outgoing_contrib[v] = d > 0 ? scores[v] / d : 0;
        }, par::Schedule::kStatic);

        const double error = par::parallel_reduce<vid_t, double>(
            0, n, 0.0,
            [&](vid_t v) {
                score_t incoming_total = 0;
                for (vid_t u : g.in_neigh(v))
                    incoming_total += outgoing_contrib[u];
                const score_t old_score = scores[v];
                scores[v] = base_score + damping * incoming_total;
                return std::fabs(scores[v] - old_score);
            },
            [](double a, double b) { return a + b; });

        obs::counter_add("iterations", 1);
        obs::counter_add("edges_traversed",
                         static_cast<std::uint64_t>(
                             g.num_edges_directed()));
        if (error < tolerance)
            break;
    }
    return scores;
}

std::vector<score_t>
pagerank_gauss_seidel(const CSRGraph& g, double damping, double tolerance,
                      int max_iters)
{
    const vid_t n = g.num_vertices();
    const score_t base_score = (score_t{1} - damping) / n;
    std::vector<score_t> scores(static_cast<std::size_t>(n),
                                score_t{1} / n);
    std::vector<score_t> contrib(static_cast<std::size_t>(n));
    std::vector<score_t> inv_degree(static_cast<std::size_t>(n));
    par::parallel_for<vid_t>(0, n, [&](vid_t v) {
        const eid_t d = g.out_degree(v);
        inv_degree[v] = d > 0 ? score_t{1} / d : 0;
        contrib[v] = scores[v] * inv_degree[v];
    }, par::Schedule::kStatic);

    for (int iter = 0; iter < max_iters; ++iter) {
        const double error = par::parallel_reduce<vid_t, double>(
            0, n, 0.0,
            [&](vid_t v) {
                score_t incoming_total = 0;
                for (vid_t u : g.in_neigh(v))
                    incoming_total += par::atomic_load(contrib[u]);
                const score_t next =
                    base_score + damping * incoming_total;
                const score_t old = scores[v];
                scores[v] = next;
                par::atomic_store(contrib[v], next * inv_degree[v]);
                return std::fabs(next - old);
            },
            [](double a, double b) { return a + b; });
        obs::counter_add("iterations", 1);
        obs::counter_add("edges_traversed",
                         static_cast<std::uint64_t>(
                             g.num_edges_directed()));
        if (error < tolerance)
            break;
    }
    return scores;
}

} // namespace gm::gapref
