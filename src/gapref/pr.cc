#include "gm/gapref/kernels.hh"

#include <algorithm>
#include <cmath>

#include "gm/obs/trace.hh"
#include "gm/par/atomics.hh"
#include "gm/par/parallel_for.hh"

namespace gm::gapref
{

std::vector<score_t>
pagerank(const CSRGraph& g, double damping, double tolerance, int max_iters)
{
    const vid_t n = g.num_vertices();
    const score_t init_score = score_t{1} / n;
    const score_t base_score = (score_t{1} - damping) / n;
    std::vector<score_t> scores(static_cast<std::size_t>(n), init_score);
    std::vector<score_t> outgoing_contrib(static_cast<std::size_t>(n), 0);

    for (int iter = 0; iter < max_iters; ++iter) {
        par::parallel_for<vid_t>(0, n, [&](vid_t v) {
            const eid_t d = g.out_degree(v);
            outgoing_contrib[v] = d > 0 ? scores[v] / d : 0;
        }, par::Schedule::kStatic);

        const double error = par::parallel_reduce<vid_t, double>(
            0, n, 0.0,
            [&](vid_t v) {
                score_t incoming_total = 0;
                for (vid_t u : g.in_neigh(v))
                    incoming_total += outgoing_contrib[u];
                const score_t old_score = scores[v];
                scores[v] = base_score + damping * incoming_total;
                return std::fabs(scores[v] - old_score);
            },
            [](double a, double b) { return a + b; });

        obs::counter_add("iterations", 1);
        obs::counter_add("edges_traversed",
                         static_cast<std::uint64_t>(
                             g.num_edges_directed()));
        if (error < tolerance)
            break;
    }
    return scores;
}

std::vector<score_t>
pagerank_gauss_seidel(const CSRGraph& g, double damping, double tolerance,
                      int max_iters)
{
    // Blocked Gauss-Seidel: vertices are partitioned on a fixed chunk grid
    // (a function of n only), chunks sweep in ascending order, and contrib
    // updates are staged per chunk and committed at the chunk boundary.
    // Reads therefore see fresh values from earlier chunks (Gauss-Seidel
    // across chunks) and iteration-start values within a chunk (Jacobi
    // inside), a schedule that is a pure function of the graph — the racy
    // in-place variant converged a little faster per sweep but its result
    // depended on lane interleaving, which broke result caching.
    const vid_t n = g.num_vertices();
    const score_t base_score = (score_t{1} - damping) / n;
    std::vector<score_t> scores(static_cast<std::size_t>(n),
                                score_t{1} / n);
    std::vector<score_t> contrib(static_cast<std::size_t>(n));
    std::vector<score_t> inv_degree(static_cast<std::size_t>(n));
    par::parallel_for<vid_t>(0, n, [&](vid_t v) {
        const eid_t d = g.out_degree(v);
        inv_degree[v] = d > 0 ? score_t{1} / d : 0;
        contrib[v] = scores[v] * inv_degree[v];
    }, par::Schedule::kStatic);

    constexpr vid_t kChunks = 64;
    const vid_t chunk = (n + kChunks - 1) / kChunks < 1
                            ? 1
                            : (n + kChunks - 1) / kChunks;
    std::vector<score_t> staged(static_cast<std::size_t>(chunk));

    for (int iter = 0; iter < max_iters; ++iter) {
        double error = 0.0;
        for (vid_t lo = 0; lo < n; lo += chunk) {
            const vid_t hi = std::min<vid_t>(lo + chunk, n);
            error += par::parallel_reduce<vid_t, double>(
                lo, hi, 0.0,
                [&](vid_t v) {
                    score_t incoming_total = 0;
                    for (vid_t u : g.in_neigh(v))
                        incoming_total += contrib[u];
                    const score_t next =
                        base_score + damping * incoming_total;
                    const score_t old = scores[v];
                    scores[v] = next;
                    staged[v - lo] = next * inv_degree[v];
                    return std::fabs(next - old);
                },
                [](double a, double b) { return a + b; });
            par::parallel_for<vid_t>(lo, hi, [&](vid_t v) {
                contrib[v] = staged[v - lo];
            }, par::Schedule::kStatic);
        }
        obs::counter_add("iterations", 1);
        obs::counter_add("edges_traversed",
                         static_cast<std::uint64_t>(
                             g.num_edges_directed()));
        if (error < tolerance)
            break;
    }
    return scores;
}

} // namespace gm::gapref
