#include "gm/gapref/verify.hh"

#include <algorithm>
#include <cmath>
#include <queue>
#include <sstream>

namespace gm::gapref
{

namespace
{

std::string
fmt_error(const std::string& what)
{
    return what;
}

void
set_error(std::string* error, const std::string& msg)
{
    if (error != nullptr)
        *error = fmt_error(msg);
}

/** Binary search for @p needle in the sorted neighborhood of @p v. */
bool
has_edge(const CSRGraph& g, vid_t v, vid_t needle)
{
    const auto neigh = g.out_neigh(v);
    return std::binary_search(neigh.begin(), neigh.end(), needle);
}

} // namespace

std::vector<vid_t>
serial_bfs_depths(const CSRGraph& g, vid_t source)
{
    std::vector<vid_t> depth(g.num_vertices(), kInvalidVid);
    std::vector<vid_t> queue;
    queue.push_back(source);
    depth[source] = 0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
        const vid_t v = queue[head];
        for (vid_t u : g.out_neigh(v)) {
            if (depth[u] == kInvalidVid) {
                depth[u] = depth[v] + 1;
                queue.push_back(u);
            }
        }
    }
    return depth;
}

std::vector<weight_t>
serial_dijkstra(const WCSRGraph& g, vid_t source)
{
    std::vector<weight_t> dist(g.num_vertices(), kInfWeight);
    using Entry = std::pair<weight_t, vid_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    dist[source] = 0;
    heap.push({0, source});
    while (!heap.empty()) {
        auto [d, v] = heap.top();
        heap.pop();
        if (d > dist[v])
            continue;
        for (const graph::WNode& wn : g.out_neigh(v)) {
            const weight_t nd = d + wn.w;
            if (nd < dist[wn.v]) {
                dist[wn.v] = nd;
                heap.push({nd, wn.v});
            }
        }
    }
    return dist;
}

std::vector<vid_t>
serial_components(const CSRGraph& g)
{
    const vid_t n = g.num_vertices();
    std::vector<vid_t> parent(static_cast<std::size_t>(n));
    for (vid_t v = 0; v < n; ++v)
        parent[v] = v;

    auto find = [&](vid_t v) {
        while (parent[v] != v) {
            parent[v] = parent[parent[v]];
            v = parent[v];
        }
        return v;
    };
    auto unite = [&](vid_t a, vid_t b) {
        a = find(a);
        b = find(b);
        if (a == b)
            return;
        if (a > b)
            std::swap(a, b);
        parent[b] = a; // smaller id wins -> canonical labels
    };

    for (vid_t v = 0; v < n; ++v)
        for (vid_t u : g.out_neigh(v))
            unite(v, u);
    // Weak connectivity: in-edges connect too (no-op for undirected).
    if (g.is_directed()) {
        for (vid_t v = 0; v < n; ++v)
            for (vid_t u : g.in_neigh(v))
                unite(v, u);
    }
    std::vector<vid_t> label(static_cast<std::size_t>(n));
    for (vid_t v = 0; v < n; ++v)
        label[v] = find(v);
    return label;
}

std::vector<score_t>
serial_brandes(const CSRGraph& g, const std::vector<vid_t>& sources)
{
    const vid_t n = g.num_vertices();
    std::vector<score_t> scores(static_cast<std::size_t>(n), 0);
    std::vector<double> sigma(static_cast<std::size_t>(n));
    std::vector<double> delta(static_cast<std::size_t>(n));
    std::vector<vid_t> depth(static_cast<std::size_t>(n));
    std::vector<vid_t> order;
    order.reserve(static_cast<std::size_t>(n));

    for (vid_t s : sources) {
        std::fill(sigma.begin(), sigma.end(), 0.0);
        std::fill(delta.begin(), delta.end(), 0.0);
        std::fill(depth.begin(), depth.end(), kInvalidVid);
        order.clear();
        sigma[s] = 1;
        depth[s] = 0;
        order.push_back(s);
        for (std::size_t head = 0; head < order.size(); ++head) {
            const vid_t v = order[head];
            for (vid_t u : g.out_neigh(v)) {
                if (depth[u] == kInvalidVid) {
                    depth[u] = depth[v] + 1;
                    order.push_back(u);
                }
                if (depth[u] == depth[v] + 1)
                    sigma[u] += sigma[v];
            }
        }
        for (std::size_t i = order.size(); i-- > 0;) {
            const vid_t v = order[i];
            for (vid_t u : g.out_neigh(v)) {
                if (depth[u] == depth[v] + 1)
                    delta[v] += (sigma[v] / sigma[u]) * (1 + delta[u]);
            }
            if (v != s)
                scores[v] += delta[v];
        }
    }
    const score_t biggest = *std::max_element(scores.begin(), scores.end());
    if (biggest > 0)
        for (auto& s : scores)
            s /= biggest;
    return scores;
}

std::uint64_t
serial_tc(const CSRGraph& g)
{
    // Independent method: count each triangle at its smallest vertex by
    // hash-set membership, rather than the kernels' sorted-merge rank trick.
    std::uint64_t total = 0;
    const vid_t n = g.num_vertices();
    std::vector<char> marked(static_cast<std::size_t>(n), 0);
    for (vid_t u = 0; u < n; ++u) {
        for (vid_t v : g.out_neigh(u))
            marked[v] = 1;
        for (vid_t v : g.out_neigh(u)) {
            if (v >= u)
                continue;
            for (vid_t w : g.out_neigh(v)) {
                if (w >= v)
                    continue;
                if (marked[w])
                    ++total;
            }
        }
        for (vid_t v : g.out_neigh(u))
            marked[v] = 0;
    }
    return total;
}

bool
verify_bfs(const CSRGraph& g, vid_t source, const std::vector<vid_t>& parent,
           std::string* error)
{
    if (parent.size() != static_cast<std::size_t>(g.num_vertices())) {
        set_error(error, "bfs: result size mismatch");
        return false;
    }
    const std::vector<vid_t> depth = serial_bfs_depths(g, source);
    if (parent[source] != source) {
        set_error(error, "bfs: source is not its own parent");
        return false;
    }
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
        const bool reachable = depth[v] != kInvalidVid;
        const bool claimed = parent[v] != kInvalidVid;
        if (reachable != claimed) {
            std::ostringstream os;
            os << "bfs: vertex " << v << " reachability mismatch (depth "
               << depth[v] << ", parent " << parent[v] << ")";
            set_error(error, os.str());
            return false;
        }
        if (!reachable || v == source)
            continue;
        const vid_t p = parent[v];
        if (!has_edge(g, p, v)) {
            std::ostringstream os;
            os << "bfs: claimed parent edge " << p << "->" << v
               << " does not exist";
            set_error(error, os.str());
            return false;
        }
        if (depth[v] != depth[p] + 1) {
            std::ostringstream os;
            os << "bfs: vertex " << v << " parent " << p
               << " is not one level shallower";
            set_error(error, os.str());
            return false;
        }
    }
    return true;
}

bool
verify_sssp(const WCSRGraph& g, vid_t source,
            const std::vector<weight_t>& dist, std::string* error)
{
    if (dist.size() != static_cast<std::size_t>(g.num_vertices())) {
        set_error(error, "sssp: result size mismatch");
        return false;
    }
    const std::vector<weight_t> oracle = serial_dijkstra(g, source);
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
        if (dist[v] != oracle[v]) {
            std::ostringstream os;
            os << "sssp: vertex " << v << " distance " << dist[v]
               << " != oracle " << oracle[v];
            set_error(error, os.str());
            return false;
        }
    }
    return true;
}

bool
verify_pagerank(const CSRGraph& g, const std::vector<score_t>& scores,
                double damping, double tolerance, std::string* error)
{
    const vid_t n = g.num_vertices();
    if (scores.size() != static_cast<std::size_t>(n)) {
        set_error(error, "pagerank: result size mismatch");
        return false;
    }
    const score_t base_score = (1.0 - damping) / n;
    std::vector<score_t> contrib(static_cast<std::size_t>(n));
    for (vid_t v = 0; v < n; ++v) {
        const eid_t d = g.out_degree(v);
        contrib[v] = d > 0 ? scores[v] / d : 0;
    }
    double residual = 0;
    for (vid_t v = 0; v < n; ++v) {
        score_t incoming = 0;
        for (vid_t u : g.in_neigh(v))
            incoming += contrib[u];
        residual += std::fabs(base_score + damping * incoming - scores[v]);
    }
    // A converged Jacobi or Gauss-Seidel fixed point both satisfy this.
    if (residual > 10 * tolerance) {
        std::ostringstream os;
        os << "pagerank: residual " << residual << " exceeds "
           << 10 * tolerance;
        set_error(error, os.str());
        return false;
    }
    return true;
}

bool
verify_cc(const CSRGraph& g, const std::vector<vid_t>& comp,
          std::string* error)
{
    const vid_t n = g.num_vertices();
    if (comp.size() != static_cast<std::size_t>(n)) {
        set_error(error, "cc: result size mismatch");
        return false;
    }
    for (vid_t v = 0; v < n; ++v) {
        for (vid_t u : g.out_neigh(v)) {
            if (comp[v] != comp[u]) {
                std::ostringstream os;
                os << "cc: edge " << v << "->" << u
                   << " crosses labels " << comp[v] << "/" << comp[u];
                set_error(error, os.str());
                return false;
            }
        }
    }
    const std::vector<vid_t> oracle = serial_components(g);
    std::vector<vid_t> seen_labels(comp.begin(), comp.end());
    std::sort(seen_labels.begin(), seen_labels.end());
    seen_labels.erase(std::unique(seen_labels.begin(), seen_labels.end()),
                      seen_labels.end());
    std::vector<vid_t> oracle_labels(oracle.begin(), oracle.end());
    std::sort(oracle_labels.begin(), oracle_labels.end());
    oracle_labels.erase(
        std::unique(oracle_labels.begin(), oracle_labels.end()),
        oracle_labels.end());
    if (seen_labels.size() != oracle_labels.size()) {
        std::ostringstream os;
        os << "cc: " << seen_labels.size() << " labels but "
           << oracle_labels.size() << " true components";
        set_error(error, os.str());
        return false;
    }
    return true;
}

bool
verify_bc(const CSRGraph& g, const std::vector<vid_t>& sources,
          const std::vector<score_t>& scores, std::string* error)
{
    if (scores.size() != static_cast<std::size_t>(g.num_vertices())) {
        set_error(error, "bc: result size mismatch");
        return false;
    }
    const std::vector<score_t> oracle = serial_brandes(g, sources);
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
        const double diff = std::fabs(scores[v] - oracle[v]);
        if (diff > 1e-6 * std::max(1.0, std::fabs(oracle[v]))) {
            std::ostringstream os;
            os << "bc: vertex " << v << " score " << scores[v]
               << " != oracle " << oracle[v];
            set_error(error, os.str());
            return false;
        }
    }
    return true;
}

bool
verify_tc(const CSRGraph& g, std::uint64_t count, std::string* error)
{
    const std::uint64_t oracle = serial_tc(g);
    if (count != oracle) {
        std::ostringstream os;
        os << "tc: count " << count << " != oracle " << oracle;
        set_error(error, os.str());
        return false;
    }
    return true;
}

} // namespace gm::gapref
