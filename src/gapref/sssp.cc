#include "gm/gapref/kernels.hh"

#include <algorithm>
#include <atomic>
#include <limits>

#include "gm/obs/trace.hh"
#include "gm/par/atomics.hh"
#include "gm/par/barrier.hh"
#include "gm/par/parallel_for.hh"

namespace gm::gapref
{

namespace
{

constexpr std::size_t kMaxBin = std::numeric_limits<std::size_t>::max() / 2;

/** Bucket-fusion drain threshold, per GraphIt/GAPBS. */
constexpr std::size_t kBinSizeThreshold = 1000;

} // namespace

std::vector<weight_t>
sssp(const WCSRGraph& g, vid_t source, weight_t delta)
{
    const vid_t n = g.num_vertices();
    std::vector<weight_t> dist(static_cast<std::size_t>(n), kInfWeight);
    dist[source] = 0;

    std::vector<vid_t> frontier(
        static_cast<std::size_t>(g.num_edges_directed()) + 1);
    frontier[0] = source;

    // Double-buffered shared state, indexed by iteration parity.
    std::size_t shared_indexes[2] = {0, kMaxBin};
    std::size_t frontier_tails[2] = {1, 0};

    // Hold the lease up front so the barrier parties match the lanes
    // parallel_lanes (which adopts this lease) will actually run —
    // effective_lanes() alone is an upper bound that an ephemeral
    // acquisition might not reach.  The short delta-stepping rounds favor
    // the spinning barrier.  dist itself is deterministic at any width:
    // monotone CAS relaxation converges to the unique shortest-distance
    // fixpoint regardless of relaxation order.
    par::LaneLease lease(par::num_threads());
    par::SpinBarrier barrier(lease.width());

    par::parallel_lanes([&](int lane, int lanes) {
        std::vector<std::vector<vid_t>> local_bins;
        std::size_t iter = 0;
        // Local workload tallies; flushed into the session (if any) once
        // the lane finishes, so the hot loop stays branch-free.
        std::uint64_t edges_scanned = 0;
        std::uint64_t relaxations = 0;
        std::uint64_t fused_drains = 0;

        auto relax_edges = [&](vid_t u) {
            for (const graph::WNode& wn : g.out_neigh(u)) {
                ++edges_scanned;
                weight_t old_dist = par::atomic_load(dist[wn.v]);
                const weight_t new_dist = dist[u] + wn.w;
                while (new_dist < old_dist) {
                    if (par::compare_and_swap(dist[wn.v], old_dist,
                                              new_dist)) {
                        ++relaxations;
                        const std::size_t dest_bin =
                            static_cast<std::size_t>(new_dist / delta);
                        if (dest_bin >= local_bins.size())
                            local_bins.resize(dest_bin + 1);
                        local_bins[dest_bin].push_back(wn.v);
                        break;
                    }
                    old_dist = par::atomic_load(dist[wn.v]);
                }
            }
        };

        while (shared_indexes[iter & 1] != kMaxBin) {
            const std::size_t curr_bin_index = shared_indexes[iter & 1];
            const std::size_t curr_tail = frontier_tails[iter & 1];
            std::size_t& next_frontier_tail = frontier_tails[(iter + 1) & 1];

            // Split the shared frontier cyclically across lanes; skip
            // entries already settled into an earlier bucket.
            for (std::size_t i = lane; i < curr_tail;
                 i += static_cast<std::size_t>(lanes)) {
                const vid_t u = frontier[i];
                if (dist[u] >= static_cast<weight_t>(
                                   delta *
                                   static_cast<weight_t>(curr_bin_index))) {
                    relax_edges(u);
                }
            }

            // Bucket fusion: drain small same-bucket local bins directly,
            // avoiding a full synchronization round each time.
            while (curr_bin_index < local_bins.size() &&
                   !local_bins[curr_bin_index].empty() &&
                   local_bins[curr_bin_index].size() < kBinSizeThreshold) {
                ++fused_drains;
                std::vector<vid_t> curr_bin_copy;
                curr_bin_copy.swap(local_bins[curr_bin_index]);
                for (vid_t u : curr_bin_copy)
                    relax_edges(u);
            }

            // Propose the smallest non-empty local bin as the next bucket.
            for (std::size_t b = curr_bin_index; b < local_bins.size(); ++b) {
                if (!local_bins[b].empty()) {
                    std::atomic_ref<std::size_t> ref(
                        shared_indexes[(iter + 1) & 1]);
                    std::size_t seen = ref.load(std::memory_order_relaxed);
                    while (b < seen &&
                           !ref.compare_exchange_weak(
                               seen, b, std::memory_order_relaxed)) {
                    }
                    break;
                }
            }

            barrier.wait();

            const std::size_t next_bin_index = shared_indexes[(iter + 1) & 1];
            if (next_bin_index < local_bins.size() &&
                !local_bins[next_bin_index].empty()) {
                const std::size_t copy_size =
                    local_bins[next_bin_index].size();
                const std::size_t offset = par::fetch_add<std::size_t>(
                    next_frontier_tail, copy_size);
                std::copy(
                    local_bins[next_bin_index].begin(),
                    local_bins[next_bin_index].end(),
                    frontier.begin() + static_cast<std::ptrdiff_t>(offset));
                local_bins[next_bin_index].clear();
            }

            barrier.wait();

            if (lane == 0) {
                shared_indexes[iter & 1] = kMaxBin;
                frontier_tails[iter & 1] = 0;
            }
            barrier.wait();
            ++iter;
        }

        obs::counter_add("edges_traversed", edges_scanned);
        obs::counter_add("sssp.relaxations", relaxations);
        obs::counter_add("sssp.fused_drains", fused_drains);
        if (lane == 0) {
            // One bucket round per iteration of the shared while loop.
            obs::counter_add("iterations",
                             static_cast<std::uint64_t>(iter));
        }
    });

    return dist;
}

} // namespace gm::gapref
