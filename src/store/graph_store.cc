#include "gm/store/graph_store.hh"

#include <utility>

#include "gm/graph/builder.hh"
#include "gm/support/hash.hh"
#include "gm/support/timer.hh"

namespace gm::store
{

namespace
{

/** Symmetrize a directed graph for TC (GAP runs TC on undirected inputs). */
graph::CSRGraph
symmetrized(const graph::CSRGraph& g)
{
    graph::EdgeList edges;
    edges.reserve(static_cast<std::size_t>(g.num_edges_directed()));
    for (vid_t v = 0; v < g.num_vertices(); ++v)
        for (vid_t u : g.out_neigh(v))
            edges.push_back({v, u});
    return graph::build_graph(edges, g.num_vertices(), false);
}

std::size_t
owned_bytes(const graph::CSRGraph& g)
{
    return g.bytes_resident();
}

std::size_t
owned_bytes(const graph::WCSRGraph& g)
{
    return g.bytes_resident();
}

std::size_t
owned_bytes(const grb::lagraph::GrbGraph& gg)
{
    return gg.bytes_owned();
}

} // namespace

GraphStore::GraphStore(graph::CSRGraph base, std::uint64_t weight_seed)
    : base_(std::make_shared<const graph::CSRGraph>(std::move(base))),
      weight_seed_(weight_seed)
{
    high_water_bytes_ = base_->bytes_resident();
}

/**
 * Memoized acquisition: fast path under the state lock, then the slot's
 * build mutex serializes the (potentially expensive) build so it happens
 * exactly once per residency.  Builders may acquire *other* slots through
 * the public getters — the dependency graph (grb_weighted -> weighted,
 * relabeled -> undirected) is acyclic, and no build lock is held while
 * taking the state lock the dependency needs.
 */
template <typename T, typename Build>
std::shared_ptr<const T>
GraphStore::acquire(Slot<T>& slot, Build&& build) const
{
    {
        std::lock_guard<std::mutex> lock(state_mu_);
        if (slot.value)
            return slot.value;
    }
    std::lock_guard<std::mutex> build_lock(slot.build_mu);
    {
        std::lock_guard<std::mutex> lock(state_mu_);
        if (slot.value) // built while we waited for the build lock
            return slot.value;
    }
    Timer timer;
    timer.start();
    auto built = std::make_shared<const T>(build());
    timer.stop();
    const std::size_t bytes = owned_bytes(*built);
    {
        std::lock_guard<std::mutex> lock(state_mu_);
        slot.value = built;
        slot.bytes = bytes;
        slot.build_seconds = timer.seconds();
        ++slot.builds;
        update_high_water();
    }
    return built;
}

std::shared_ptr<const graph::WCSRGraph>
GraphStore::weighted() const
{
    return acquire(weighted_,
                   [&] { return graph::add_weights(*base_, weight_seed_); });
}

std::shared_ptr<const graph::CSRGraph>
GraphStore::undirected() const
{
    if (!base_->is_directed())
        return base_; // alias: undirected graphs are their own symmetrization
    return acquire(undirected_, [&] { return symmetrized(*base_); });
}

std::shared_ptr<const graph::CSRGraph>
GraphStore::relabeled() const
{
    auto und = undirected(); // dependency first, outside any build lock
    return acquire(relabeled_,
                   [&] { return graph::relabel_by_degree(*und); });
}

std::shared_ptr<const grb::lagraph::GrbGraph>
GraphStore::grb() const
{
    return acquire(grb_, [&] { return grb::lagraph::make_grb_graph(base_); });
}

std::shared_ptr<const grb::lagraph::GrbGraph>
GraphStore::grb_weighted() const
{
    auto wg = weighted();
    auto pattern = grb();
    return acquire(grb_weighted_, [&] {
        grb::lagraph::GrbGraph gg = *pattern; // shares A/AT views
        grb::lagraph::attach_weights(gg, wg);
        return gg;
    });
}

void
GraphStore::evict_derived()
{
    std::lock_guard<std::mutex> lock(state_mu_);
    weighted_.value.reset();
    undirected_.value.reset();
    relabeled_.value.reset();
    grb_.value.reset();
    grb_weighted_.value.reset();
}

std::uint64_t
GraphStore::fingerprint() const
{
    std::lock_guard<std::mutex> lock(state_mu_);
    if (!fingerprint_done_) {
        support::Fnv1a h;
        h.update_value(base_->num_vertices());
        h.update_value(base_->is_directed());
        h.update_vector(base_->out_offsets());
        h.update_vector(base_->out_destinations());
        h.update_value(weight_seed_);
        fingerprint_ = h.digest();
        fingerprint_done_ = true;
        if (generation_ == 0 && !identity_done_) {
            identity_ = fingerprint_;
            identity_done_ = true;
        }
    }
    return fingerprint_;
}

std::uint64_t
GraphStore::identity_locked() const
{
    if (!identity_done_) {
        // Only reachable while still at generation 0 (install_generation
        // freezes the identity before the first swap).
        support::Fnv1a h;
        h.update_value(base_->num_vertices());
        h.update_value(base_->is_directed());
        h.update_vector(base_->out_offsets());
        h.update_vector(base_->out_destinations());
        h.update_value(weight_seed_);
        identity_ = h.digest();
        identity_done_ = true;
    }
    return identity_;
}

std::uint64_t
GraphStore::identity() const
{
    std::lock_guard<std::mutex> lock(state_mu_);
    return identity_locked();
}

std::uint64_t
GraphStore::generation() const
{
    std::lock_guard<std::mutex> lock(state_mu_);
    return generation_;
}

std::uint64_t
GraphStore::install_generation(graph::CSRGraph next)
{
    auto installed = std::make_shared<const graph::CSRGraph>(std::move(next));
    std::lock_guard<std::mutex> lock(state_mu_);
    (void)identity_locked(); // freeze gen-0 identity before the swap
    retired_.emplace_back(std::weak_ptr<const graph::CSRGraph>(base_),
                          base_->bytes_resident());
    base_ = std::move(installed);
    ++generation_;
    fingerprint_done_ = false; // next fingerprint() hashes the new base
    // Cached derived forms describe the retired generation; drop them so
    // the next getter rebuilds against the new base.  Outstanding
    // shared_ptrs stay valid and keep the old bytes counted above.
    weighted_.value.reset();
    undirected_.value.reset();
    relabeled_.value.reset();
    grb_.value.reset();
    grb_weighted_.value.reset();
    prune_retired_locked();
    update_high_water();
    return generation_;
}

void
GraphStore::set_overlay_bytes(std::size_t bytes)
{
    std::lock_guard<std::mutex> lock(state_mu_);
    overlay_bytes_ = bytes;
    update_high_water();
}

void
GraphStore::prune_retired_locked() const
{
    std::erase_if(retired_, [](const auto& row) { return row.first.expired(); });
}

std::size_t
GraphStore::resident_locked() const
{
    prune_retired_locked();
    std::size_t total = base_->bytes_resident();
    const auto add = [&](const auto& slot) {
        if (slot.value)
            total += slot.bytes;
    };
    add(weighted_);
    add(undirected_);
    add(relabeled_);
    add(grb_);
    add(grb_weighted_);
    total += overlay_bytes_;
    for (const auto& row : retired_)
        total += row.second;
    return total;
}

std::size_t
GraphStore::bytes_resident() const
{
    std::lock_guard<std::mutex> lock(state_mu_);
    return resident_locked();
}

void
GraphStore::update_high_water() const
{
    const std::size_t total = resident_locked();
    if (total > high_water_bytes_)
        high_water_bytes_ = total;
}

std::size_t
GraphStore::bytes_high_water() const
{
    std::lock_guard<std::mutex> lock(state_mu_);
    return high_water_bytes_;
}

template <typename T>
ArtifactInfo
GraphStore::info(const char* name, const Slot<T>& slot) const
{
    // Caller holds state_mu_.
    ArtifactInfo row;
    row.name = name;
    row.resident = slot.value != nullptr;
    row.bytes = slot.bytes;
    row.build_seconds = slot.build_seconds;
    row.builds = slot.builds;
    return row;
}

std::vector<ArtifactInfo>
GraphStore::artifacts() const
{
    std::lock_guard<std::mutex> lock(state_mu_);
    std::vector<ArtifactInfo> rows;
    ArtifactInfo base_row;
    base_row.name = "base";
    base_row.resident = true;
    base_row.bytes = base_->bytes_resident();
    rows.push_back(std::move(base_row));
    rows.push_back(info("weighted", weighted_));
    if (base_->is_directed()) {
        rows.push_back(info("undirected", undirected_));
    } else {
        ArtifactInfo row;
        row.name = "undirected";
        row.resident = true;
        row.alias = true; // shares the base graph's buffers
        rows.push_back(std::move(row));
    }
    rows.push_back(info("relabeled", relabeled_));
    rows.push_back(info("grb", grb_));
    rows.push_back(info("grb+weights", grb_weighted_));
    prune_retired_locked();
    {
        ArtifactInfo row;
        row.name = "overlay";
        row.resident = overlay_bytes_ > 0;
        row.bytes = overlay_bytes_;
        rows.push_back(std::move(row));
    }
    {
        ArtifactInfo row;
        row.name = "retired";
        row.resident = !retired_.empty();
        row.builds = static_cast<int>(retired_.size());
        for (const auto& r : retired_)
            row.bytes += r.second;
        rows.push_back(std::move(row));
    }
    return rows;
}

} // namespace gm::store
