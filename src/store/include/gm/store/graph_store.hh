/**
 * @file
 * GraphStore: the immutable, reference-counted artifact layer behind a
 * benchmark dataset.
 *
 * A store holds one base CSR graph and derives every other form a
 * framework might want — weighted, symmetrized, degree-relabeled, and the
 * GraphBLAS packaging (pattern views, optionally with weights) — lazily,
 * exactly once, thread-safely.  Each artifact is memoized behind a
 * shared_ptr to an immutable object: callers that need an artifact to
 * outlive the store's cache (e.g. across per-graph eviction in a sweep)
 * hold the shared_ptr; callers inside a benchmark cell can use plain
 * references.
 *
 * The GAP rules make all of this packaging untimed ("building a
 * framework's native graph format is not timed"), which is why laziness is
 * legal: the harness warms the forms a kernel needs before starting the
 * trial timer, so first-touch builds never pollute timings.
 *
 * evict_derived() drops the cache's references to every derived form;
 * outstanding shared_ptrs (and GraphBLAS views, which pin their source via
 * keep-alive handles) stay valid.  Per-artifact accounting — owned bytes,
 * build seconds, build count — survives eviction so a sweep can report
 * both its peak footprint and what each form cost to build.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gm/graph/csr.hh"
#include "gm/grb/lagraph.hh"

namespace gm::store
{

/** Accounting row for one artifact of a GraphStore. */
struct ArtifactInfo
{
    std::string name;        ///< "base", "weighted", "undirected", ...
    bool resident = false;   ///< currently cached in the store
    bool alias = false;      ///< shares buffers with another artifact
    std::size_t bytes = 0;   ///< owned heap bytes when built (aliases: 0)
    double build_seconds = 0;///< cost of the last build (untimed by GAP)
    int builds = 0;          ///< times built (re-builds after eviction)
};

/** Lazily derives and memoizes every graph form behind shared immutable
 *  views.  All getters are safe to call concurrently. */
class GraphStore
{
  public:
    /** @param weight_seed Seed for the synthetic SSSP weights (the GAP
     *  generator derives weights deterministically from it). */
    GraphStore(graph::CSRGraph base, std::uint64_t weight_seed);

    GraphStore(const GraphStore&) = delete;
    GraphStore& operator=(const GraphStore&) = delete;

    /** The native input graph (always resident). */
    const graph::CSRGraph& base() const { return *base_; }
    /** Shared handle to the base graph (pin it across eviction). */
    std::shared_ptr<const graph::CSRGraph> base_ptr() const { return base_; }

    /** Weighted form for SSSP. */
    std::shared_ptr<const graph::WCSRGraph> weighted() const;
    /** Symmetrized form for TC; aliases base() when already undirected. */
    std::shared_ptr<const graph::CSRGraph> undirected() const;
    /** Degree-relabeled undirected form (Optimized-mode TC). */
    std::shared_ptr<const graph::CSRGraph> relabeled() const;
    /** GraphBLAS packaging: zero-copy pattern views over base(). */
    std::shared_ptr<const grb::lagraph::GrbGraph> grb() const;
    /** GraphBLAS packaging with the weighted matrix attached. */
    std::shared_ptr<const grb::lagraph::GrbGraph> grb_weighted() const;

    /** Drop cached derived forms.  Outstanding shared_ptrs (and any
     *  GraphBLAS views pinned by keep-alives) remain valid; the next
     *  getter call rebuilds.  Accounting survives. */
    void evict_derived();

    /** Owned heap bytes currently resident across base + cached forms.
     *  Aliases and zero-copy views contribute nothing. */
    std::size_t bytes_resident() const;

    /** Largest bytes_resident() ever observed on this store.  Updated
     *  after every build; survives evict_derived(). */
    std::size_t bytes_high_water() const;

    /** Accounting snapshot for every artifact, base first. */
    std::vector<ArtifactInfo> artifacts() const;

    /**
     * Content fingerprint of this store: FNV-1a 64 over the base CSR
     * arrays (vertex count, directedness, offsets, destinations) and the
     * weight seed.  Lazy and memoized per generation; stable across
     * processes.  Derived forms are deterministic functions of the base +
     * seed and need no hashing of their own.
     */
    std::uint64_t fingerprint() const;

    /**
     * Stable identity of this store: the generation-0 fingerprint, frozen
     * the first time it is needed and unchanged by install_generation().
     * gm::serve keys its result cache on it so cache keys survive
     * mutation; pair it with generation() to distinguish snapshots.
     */
    std::uint64_t identity() const;

    /** Monotone CSR generation counter; 0 is the as-constructed base. */
    std::uint64_t generation() const;

    /**
     * Install a compacted CSR as the next generation.  The previous base
     * is retired: the store drops its strong reference but keeps counting
     * the old generation's bytes until every outstanding view (base_ptr()
     * holders, GraphBLAS keep-alives) releases it.  Cached derived forms
     * are dropped (they describe the old generation) and the per-
     * generation fingerprint memo is reset; identity() is frozen first.
     *
     * Concurrency: accounting/fingerprint getters are safe to call
     * concurrently, but callers must quiesce kernel execution that reads
     * base() by plain reference before swapping (gm::serve holds the whole
     * lane budget across Server::mutate for exactly this reason).
     *
     * @return the new generation id.
     */
    std::uint64_t install_generation(graph::CSRGraph next);

    /** Charge the dynamic overlay's delta buffers (gm::dyn) to this
     *  store's accounting; shows up in bytes_resident()/high-water. */
    void set_overlay_bytes(std::size_t bytes);

  private:
    template <typename T>
    struct Slot
    {
        std::shared_ptr<const T> value;
        std::size_t bytes = 0;
        double build_seconds = 0;
        int builds = 0;
        std::mutex build_mu; ///< serializes builds so each runs once
    };

    template <typename T, typename Build>
    std::shared_ptr<const T> acquire(Slot<T>& slot, Build&& build) const;

    template <typename T>
    ArtifactInfo info(const char* name, const Slot<T>& slot) const;

    /** Resident bytes across base + cached forms + overlay + retired
     *  generations still pinned by views.  Caller holds state_mu_. */
    std::size_t resident_locked() const;

    /** Recompute the high-water mark.  Caller holds state_mu_. */
    void update_high_water() const;

    /** Freeze + return the generation-0 identity.  Caller holds state_mu_. */
    std::uint64_t identity_locked() const;

    /** Drop retired-generation rows whose last view is gone.  Caller
     *  holds state_mu_. */
    void prune_retired_locked() const;

    std::shared_ptr<const graph::CSRGraph> base_;
    std::uint64_t weight_seed_;
    mutable std::mutex state_mu_; ///< guards every slot's non-mutex fields
    mutable std::size_t high_water_bytes_ = 0;
    mutable bool fingerprint_done_ = false;
    mutable std::uint64_t fingerprint_ = 0;
    mutable bool identity_done_ = false;
    mutable std::uint64_t identity_ = 0;
    std::uint64_t generation_ = 0;
    std::size_t overlay_bytes_ = 0;
    /** Old generations: (weak view handle, owned bytes).  A row counts
     *  toward residency until its weak_ptr expires; pruned lazily. */
    mutable std::vector<std::pair<std::weak_ptr<const graph::CSRGraph>,
                                  std::size_t>> retired_;
    mutable Slot<graph::WCSRGraph> weighted_;
    mutable Slot<graph::CSRGraph> undirected_;
    mutable Slot<graph::CSRGraph> relabeled_;
    mutable Slot<grb::lagraph::GrbGraph> grb_;
    mutable Slot<grb::lagraph::GrbGraph> grb_weighted_;
};

} // namespace gm::store
