#include "gm/cli/argparse.hh"

#include <cstdlib>
#include <iostream>

namespace gm::cli
{

ArgParser::ArgParser(std::string program) : program_(std::move(program)) {}

ArgParser&
ArgParser::usage(std::function<void()> fn)
{
    usage_ = std::move(fn);
    return *this;
}

ArgParser&
ArgParser::add(std::vector<std::string>&& names, Handler&& handler)
{
    for (std::string& name : names)
        handlers_[std::move(name)] = handler;
    return *this;
}

ArgParser&
ArgParser::flag(std::vector<std::string> names, std::function<void()> fn)
{
    Handler h;
    h.on_flag = std::move(fn);
    return add(std::move(names), std::move(h));
}

ArgParser&
ArgParser::flag(std::vector<std::string> names, bool* target)
{
    return flag(std::move(names), [target] { *target = true; });
}

ArgParser&
ArgParser::value(std::vector<std::string> names,
                 std::function<bool(const std::string&)> fn)
{
    Handler h;
    h.takes_value = true;
    h.on_value = std::move(fn);
    return add(std::move(names), std::move(h));
}

ArgParser&
ArgParser::value(std::vector<std::string> names, std::string* target)
{
    return value(std::move(names), [target](const std::string& v) {
        *target = v;
        return true;
    });
}

ArgParser&
ArgParser::value(std::vector<std::string> names, int* target)
{
    return value(std::move(names), [target](const std::string& v) {
        *target = std::atoi(v.c_str());
        return true;
    });
}

ArgParser&
ArgParser::value(std::vector<std::string> names, double* target)
{
    return value(std::move(names), [target](const std::string& v) {
        *target = std::atof(v.c_str());
        return true;
    });
}

ArgParser&
ArgParser::value(std::vector<std::string> names, std::uint64_t* target)
{
    return value(std::move(names), [target](const std::string& v) {
        *target = std::strtoull(v.c_str(), nullptr, 10);
        return true;
    });
}

bool
ArgParser::parse(int argc, char** argv)
{
    help_requested_ = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (usage_ && (arg == "-h" || arg == "--help")) {
            usage_();
            help_requested_ = true;
            return false;
        }
        auto it = handlers_.find(arg);
        if (it == handlers_.end()) {
            std::cerr << "unknown option: " << arg << "\n";
            if (usage_)
                usage_();
            return false;
        }
        Handler& handler = it->second;
        if (!handler.takes_value) {
            handler.on_flag();
            continue;
        }
        if (i + 1 >= argc) {
            std::cerr << arg << " requires a value\n";
            return false;
        }
        const std::string value = argv[++i];
        if (!handler.on_value(value)) {
            std::cerr << "invalid value for " << arg << ": " << value
                      << "\n";
            return false;
        }
    }
    return true;
}

} // namespace gm::cli
