#include "gm/cli/options.hh"

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "gm/cli/argparse.hh"

namespace gm::cli
{

void
print_usage(const std::string& kernel_name)
{
    std::cout
        << "Usage: " << kernel_name << " [options]\n"
        << "graph input (pick one):\n"
        << "  -g <scale>   Kronecker (Graph500) graph, 2^scale vertices\n"
        << "  -u <scale>   uniform random graph, 2^scale vertices\n"
        << "  -T <scale>   Twitter-like directed power-law graph\n"
        << "  -W <scale>   Web-crawl-like directed graph\n"
        << "  -r <scale>   road-like grid, ~2^scale vertices\n"
        << "  -f <path>    edge list file (\"u v\" per line)\n"
        << "options:\n"
        << "  -k <degree>  average degree for generators (default 16)\n"
        << "  -s           symmetrize the input (force undirected)\n"
        << "  -S <seed>    generator / source seed (default 27)\n"
        << "  -n <trials>  number of timed trials (default 3)\n"
        << "  -v           verify each result against the GAP oracles\n"
        << "  -d <delta>   SSSP bucket width (default 64)\n"
        << "  -i <iters>   PageRank max iterations (default 100)\n"
        << "  -e <tol>     PageRank tolerance (default 1e-4)\n"
        << "  -F <name>    framework: gap suitesparse galois nwgraph\n"
        << "               graphit gkc (default gap)\n"
        << "  -O           use the Optimized rule set (default Baseline)\n"
        << "fault tolerance:\n"
        << "  --trial-timeout-ms <ms>  watchdog deadline per trial\n"
        << "                           (0 = unsupervised, default)\n"
        << "  --max-attempts <n>       attempts per trial for transient\n"
        << "                           failures (default 2)\n"
        << "profiling:\n"
        << "  --trace-out <dir>        write one Chrome trace_event JSON\n"
        << "                           file per cell into <dir>\n"
        << "  --metrics-out <path>     append one metrics JSONL record\n"
        << "                           per trial to <path>\n"
        << "  -h           this help\n"
        << "(checkpoint/resume are full-sweep features; see tools/suite\n"
        << " --checkpoint/--resume)\n"
        << "exit codes: 0 ok, 1 usage, 2 invalid input, 3 kernel error,\n"
        << "            4 timeout, 5 wrong result, 6 injected fault\n";
}

std::optional<Options>
parse_options(int argc, char** argv, const std::string& kernel_name)
{
    Options opts;
    ArgParser parser(kernel_name);
    parser.usage([&kernel_name] { print_usage(kernel_name); });

    const auto generator = [&](GraphSource source) {
        return [&opts, source](const std::string& v) {
            opts.scale = std::atoi(v.c_str());
            opts.source = source;
            return true;
        };
    };
    parser.value({"-g"}, generator(GraphSource::kKronecker));
    parser.value({"-u"}, generator(GraphSource::kUniform));
    parser.value({"-T"}, generator(GraphSource::kTwitterLike));
    parser.value({"-W"}, generator(GraphSource::kWebLike));
    parser.value({"-r"}, generator(GraphSource::kRoadLike));
    parser.value({"-f"}, [&opts](const std::string& v) {
        opts.source = GraphSource::kFile;
        opts.file_path = v;
        return true;
    });
    parser.value({"-k"}, &opts.degree);
    parser.flag({"-s"}, &opts.symmetrize);
    parser.value({"-S"}, &opts.seed);
    parser.value({"-n"}, &opts.trials);
    parser.flag({"-v"}, &opts.verify);
    parser.value({"-d"}, [&opts](const std::string& v) {
        opts.delta = static_cast<weight_t>(std::atoi(v.c_str()));
        return true;
    });
    parser.value({"-i"}, &opts.max_iters);
    parser.value({"-e"}, &opts.tolerance);
    parser.value({"-F"}, &opts.framework);
    parser.flag({"-O"}, &opts.optimized);
    parser.value({"--trial-timeout-ms"}, &opts.trial_timeout_ms);
    parser.value({"--max-attempts"}, &opts.max_attempts);
    parser.value({"--trace-out"}, &opts.trace_dir);
    parser.value({"--metrics-out"}, &opts.metrics_path);

    if (!parser.parse(argc, argv))
        return std::nullopt;
    if (opts.trials < 1) {
        std::cerr << "-n must be >= 1\n";
        return std::nullopt;
    }
    if (opts.trial_timeout_ms < 0) {
        std::cerr << "--trial-timeout-ms must be >= 0\n";
        return std::nullopt;
    }
    if (opts.max_attempts < 1) {
        std::cerr << "--max-attempts must be >= 1\n";
        return std::nullopt;
    }
    return opts;
}

} // namespace gm::cli
