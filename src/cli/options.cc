#include "gm/cli/options.hh"

#include <cstdlib>
#include <cstring>
#include <iostream>

namespace gm::cli
{

void
print_usage(const std::string& kernel_name)
{
    std::cout
        << "Usage: " << kernel_name << " [options]\n"
        << "graph input (pick one):\n"
        << "  -g <scale>   Kronecker (Graph500) graph, 2^scale vertices\n"
        << "  -u <scale>   uniform random graph, 2^scale vertices\n"
        << "  -T <scale>   Twitter-like directed power-law graph\n"
        << "  -W <scale>   Web-crawl-like directed graph\n"
        << "  -r <scale>   road-like grid, ~2^scale vertices\n"
        << "  -f <path>    edge list file (\"u v\" per line)\n"
        << "options:\n"
        << "  -k <degree>  average degree for generators (default 16)\n"
        << "  -s           symmetrize the input (force undirected)\n"
        << "  -S <seed>    generator / source seed (default 27)\n"
        << "  -n <trials>  number of timed trials (default 3)\n"
        << "  -v           verify each result against the GAP oracles\n"
        << "  -d <delta>   SSSP bucket width (default 64)\n"
        << "  -i <iters>   PageRank max iterations (default 100)\n"
        << "  -e <tol>     PageRank tolerance (default 1e-4)\n"
        << "  -F <name>    framework: gap suitesparse galois nwgraph\n"
        << "               graphit gkc (default gap)\n"
        << "  -O           use the Optimized rule set (default Baseline)\n"
        << "fault tolerance:\n"
        << "  --trial-timeout-ms <ms>  watchdog deadline per trial\n"
        << "                           (0 = unsupervised, default)\n"
        << "  --max-attempts <n>       attempts per trial for transient\n"
        << "                           failures (default 2)\n"
        << "profiling:\n"
        << "  --trace-out <dir>        write one Chrome trace_event JSON\n"
        << "                           file per cell into <dir>\n"
        << "  --metrics-out <path>     append one metrics JSONL record\n"
        << "                           per trial to <path>\n"
        << "  -h           this help\n"
        << "(checkpoint/resume are full-sweep features; see tools/suite\n"
        << " --checkpoint/--resume)\n"
        << "exit codes: 0 ok, 1 usage, 2 invalid input, 3 kernel error,\n"
        << "            4 timeout, 5 wrong result, 6 injected fault\n";
}

std::optional<Options>
parse_options(int argc, char** argv, const std::string& kernel_name)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::cerr << flag << " requires a value\n";
                return nullptr;
            }
            return argv[++i];
        };

        if (arg == "-h" || arg == "--help") {
            print_usage(kernel_name);
            return std::nullopt;
        } else if (arg == "-g" || arg == "-u" || arg == "-T" ||
                   arg == "-W" || arg == "-r") {
            const char* value = next_value(arg.c_str());
            if (value == nullptr)
                return std::nullopt;
            opts.scale = std::atoi(value);
            if (arg == "-g")
                opts.source = GraphSource::kKronecker;
            else if (arg == "-u")
                opts.source = GraphSource::kUniform;
            else if (arg == "-T")
                opts.source = GraphSource::kTwitterLike;
            else if (arg == "-W")
                opts.source = GraphSource::kWebLike;
            else
                opts.source = GraphSource::kRoadLike;
        } else if (arg == "-f") {
            const char* value = next_value("-f");
            if (value == nullptr)
                return std::nullopt;
            opts.source = GraphSource::kFile;
            opts.file_path = value;
        } else if (arg == "-k") {
            const char* value = next_value("-k");
            if (value == nullptr)
                return std::nullopt;
            opts.degree = std::atoi(value);
        } else if (arg == "-s") {
            opts.symmetrize = true;
        } else if (arg == "-S") {
            const char* value = next_value("-S");
            if (value == nullptr)
                return std::nullopt;
            opts.seed = static_cast<std::uint64_t>(std::atoll(value));
        } else if (arg == "-n") {
            const char* value = next_value("-n");
            if (value == nullptr)
                return std::nullopt;
            opts.trials = std::atoi(value);
        } else if (arg == "-v") {
            opts.verify = true;
        } else if (arg == "-d") {
            const char* value = next_value("-d");
            if (value == nullptr)
                return std::nullopt;
            opts.delta = static_cast<weight_t>(std::atoi(value));
        } else if (arg == "-i") {
            const char* value = next_value("-i");
            if (value == nullptr)
                return std::nullopt;
            opts.max_iters = std::atoi(value);
        } else if (arg == "-e") {
            const char* value = next_value("-e");
            if (value == nullptr)
                return std::nullopt;
            opts.tolerance = std::atof(value);
        } else if (arg == "-F") {
            const char* value = next_value("-F");
            if (value == nullptr)
                return std::nullopt;
            opts.framework = value;
        } else if (arg == "-O") {
            opts.optimized = true;
        } else if (arg == "--trial-timeout-ms") {
            const char* value = next_value("--trial-timeout-ms");
            if (value == nullptr)
                return std::nullopt;
            opts.trial_timeout_ms = std::atoi(value);
        } else if (arg == "--max-attempts") {
            const char* value = next_value("--max-attempts");
            if (value == nullptr)
                return std::nullopt;
            opts.max_attempts = std::atoi(value);
        } else if (arg == "--trace-out") {
            const char* value = next_value("--trace-out");
            if (value == nullptr)
                return std::nullopt;
            opts.trace_dir = value;
        } else if (arg == "--metrics-out") {
            const char* value = next_value("--metrics-out");
            if (value == nullptr)
                return std::nullopt;
            opts.metrics_path = value;
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            print_usage(kernel_name);
            return std::nullopt;
        }
    }
    if (opts.trials < 1) {
        std::cerr << "-n must be >= 1\n";
        return std::nullopt;
    }
    if (opts.trial_timeout_ms < 0) {
        std::cerr << "--trial-timeout-ms must be >= 0\n";
        return std::nullopt;
    }
    if (opts.max_attempts < 1) {
        std::cerr << "--max-attempts must be >= 1\n";
        return std::nullopt;
    }
    return opts;
}

} // namespace gm::cli
