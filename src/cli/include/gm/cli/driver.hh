/**
 * @file
 * Shared driver for the GAPBS-style tools: builds the requested graph,
 * packages it as a harness Dataset, selects the framework, then runs and
 * prints per-trial and average timings in the reference suite's style.
 */
#pragma once

#include "gm/cli/options.hh"
#include "gm/harness/framework.hh"

namespace gm::cli
{

/**
 * Run one kernel end to end from parsed options.
 *
 * @return Process exit code (0 on success, 1 on bad input or failed
 *         verification).
 */
int run_kernel(harness::Kernel kernel, const Options& opts);

/** Convenience main body: parse argv then run. */
int kernel_main(harness::Kernel kernel, const std::string& name, int argc,
                char** argv);

} // namespace gm::cli
