/**
 * @file
 * Shared driver for the GAPBS-style tools: builds the requested graph,
 * packages it as a harness Dataset, selects the framework, then runs and
 * prints per-trial and average timings in the reference suite's style.
 *
 * Failures are reported through distinct process exit codes so scripts can
 * tell "bad input" from "kernel crashed" from "watchdog fired".
 */
#pragma once

#include "gm/cli/options.hh"
#include "gm/harness/framework.hh"
#include "gm/harness/runner.hh"

namespace gm::cli
{

/** Process exit codes emitted by the tools and the suite driver. */
enum ExitCode : int
{
    kExitOk = 0,
    kExitUsage = 1,         ///< bad flags / failed to parse argv
    kExitInvalidInput = 2,  ///< unreadable/corrupt graph, unknown framework
    kExitKernelError = 3,   ///< kernel threw or crashed internally
    kExitTimeout = 4,       ///< watchdog deadline exceeded
    kExitWrongResult = 5,   ///< result failed spec verification
    kExitFaultInjected = 6, ///< GM_FAULTS fault survived all retries
};

/** Map a cell's failure kind onto the exit-code convention. */
int exit_code_for(harness::FailureKind kind);

/**
 * Run one kernel end to end from parsed options.
 *
 * @return Process exit code (see ExitCode).
 */
int run_kernel(harness::Kernel kernel, const Options& opts);

/** Convenience main body: parse argv then run. */
int kernel_main(harness::Kernel kernel, const std::string& name, int argc,
                char** argv);

} // namespace gm::cli
