/**
 * @file
 * Command-line options for the GAPBS-style kernel driver binaries in
 * tools/.  Mirrors the reference suite's flag conventions: one flag per
 * synthetic generator, -f for files, -n for trial count, plus kernel
 * parameters (delta, iterations, tolerance) and framework selection.
 */
#pragma once

#include <optional>
#include <string>

#include "gm/support/types.hh"

namespace gm::cli
{

/** Which generator (or file) provides the input graph. */
enum class GraphSource
{
    kKronecker,
    kUniform,
    kTwitterLike,
    kWebLike,
    kRoadLike,
    kFile,
};

/** Parsed command line. */
struct Options
{
    GraphSource source = GraphSource::kKronecker;
    int scale = 14;           ///< log2 vertices for generators
    int degree = 16;          ///< average degree for generators
    std::string file_path;    ///< for kFile
    bool symmetrize = false;  ///< -s: force undirected
    std::uint64_t seed = 27;

    int trials = 3;
    bool verify = false;

    weight_t delta = 64;      ///< SSSP bucket width
    int max_iters = 100;      ///< PR iteration cap
    double tolerance = 1e-4;  ///< PR convergence threshold

    std::string framework = "gap"; ///< gap|suitesparse|galois|nwgraph|graphit|gkc
    bool optimized = false;        ///< use the Optimized rule set

    // Checkpoint/resume are full-sweep concerns and live on
    // harness::RunOptions (see tools/suite); the per-kernel binaries run a
    // single cell and intentionally do not expose them.
    int trial_timeout_ms = 0;      ///< watchdog deadline; 0 = unsupervised
    int max_attempts = 2;          ///< retry budget for transient failures

    // Profiling (gm::obs).
    std::string trace_dir;    ///< --trace-out: Chrome trace dir, "" = off
    std::string metrics_path; ///< --metrics-out: per-trial JSONL, "" = off
};

/**
 * Parse argv.  Returns nullopt (after printing usage) on -h or bad input.
 *
 * @param kernel_name Used in the usage banner.
 */
std::optional<Options> parse_options(int argc, char** argv,
                                     const std::string& kernel_name);

/** Print the usage banner. */
void print_usage(const std::string& kernel_name);

} // namespace gm::cli
