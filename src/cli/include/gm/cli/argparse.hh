/**
 * @file
 * Declarative command-line parsing shared by every binary in tools/.
 *
 * Before this existed each tool hand-rolled the same loop: walk argv,
 * compare strings, call a `next_value` lambda that prints "<flag>
 * requires a value", convert with atoi/atof, and fall through to an
 * "unknown option" error plus usage dump.  ArgParser keeps exactly those
 * semantics (tolerant numeric conversion included, so flag behaviour is
 * unchanged) behind a table of registered flags:
 *
 *   ArgParser parser("perf_gate");
 *   parser.usage(print_usage);
 *   parser.value({"--ref"}, &ref_path);
 *   parser.value({"--alpha"}, &opts.alpha);
 *   parser.flag({"--fail-on-missing"}, &opts.fail_on_missing);
 *   if (!parser.parse(argc, argv))
 *       return parser.help_requested() ? 0 : 2;
 *
 * -h/--help are registered automatically when a usage printer is set.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace gm::cli
{

/** Table-driven argv parser; see file header for the usage idiom. */
class ArgParser
{
  public:
    /** @param program Name used in error messages. */
    explicit ArgParser(std::string program);

    /** Register a usage printer; also enables -h/--help. */
    ArgParser& usage(std::function<void()> fn);

    /** Presence flag invoking @p fn. */
    ArgParser& flag(std::vector<std::string> names,
                    std::function<void()> fn);
    /** Presence flag setting @p *target to true. */
    ArgParser& flag(std::vector<std::string> names, bool* target);

    /** Value-taking option; @p fn may return false to reject the value
     *  (an error message is printed and parse() fails). */
    ArgParser& value(std::vector<std::string> names,
                     std::function<bool(const std::string&)> fn);
    ArgParser& value(std::vector<std::string> names, std::string* target);
    /** Numeric targets use atoi/atof semantics (tolerant, like the loops
     *  this replaces). */
    ArgParser& value(std::vector<std::string> names, int* target);
    ArgParser& value(std::vector<std::string> names, double* target);
    ArgParser& value(std::vector<std::string> names,
                     std::uint64_t* target);

    /**
     * Parse argv[1..argc).  Returns false on an unknown option, a missing
     * value, a rejected value, or a help request; unknown options and
     * help both print usage when one is registered.
     */
    bool parse(int argc, char** argv);

    /** True when parse() returned false because of -h/--help. */
    bool help_requested() const { return help_requested_; }

  private:
    struct Handler
    {
        bool takes_value = false;
        std::function<void()> on_flag;
        std::function<bool(const std::string&)> on_value;
    };

    ArgParser& add(std::vector<std::string>&& names, Handler&& handler);

    std::string program_;
    std::function<void()> usage_;
    std::map<std::string, Handler> handlers_;
    bool help_requested_ = false;
};

} // namespace gm::cli
