#include "gm/cli/driver.hh"

#include <iomanip>
#include <iostream>

#include "gm/gapref/verify.hh"
#include "gm/graph/builder.hh"
#include "gm/graph/generators.hh"
#include "gm/graph/io.hh"
#include "gm/harness/runner.hh"
#include "gm/obs/metrics.hh"
#include "gm/support/fingerprint.hh"
#include "gm/support/status.hh"
#include "gm/support/timer.hh"

namespace gm::cli
{

namespace
{

using support::Status;
using support::StatusCode;
using support::StatusOr;

StatusOr<graph::CSRGraph>
build_input_graph(const Options& opts)
{
    switch (opts.source) {
      case GraphSource::kKronecker:
        return graph::make_kronecker(opts.scale, opts.degree, opts.seed);
      case GraphSource::kUniform:
        return graph::make_uniform(opts.scale, opts.degree, opts.seed);
      case GraphSource::kTwitterLike:
        return graph::make_twitter_like(opts.scale, opts.degree, opts.seed);
      case GraphSource::kWebLike:
        return graph::make_web_like(opts.scale, opts.degree, opts.seed);
      case GraphSource::kRoadLike: {
          const vid_t side = static_cast<vid_t>(1)
                             << ((opts.scale + 1) / 2);
          const vid_t cols =
              (static_cast<vid_t>(1) << opts.scale) / side;
          return graph::make_road_like(side, std::max<vid_t>(cols, 1),
                                       opts.seed);
      }
      case GraphSource::kFile: {
          // .gmg binaries carry their own header; anything else is a text
          // edge list.
          if (opts.file_path.size() >= 4 &&
              opts.file_path.substr(opts.file_path.size() - 4) == ".gmg") {
              return graph::load_binary(opts.file_path);
          }
          vid_t n = 0;
          auto edges = graph::read_edge_list(opts.file_path, &n);
          if (!edges.is_ok())
              return edges.status();
          return graph::try_build_graph(*std::move(edges), n,
                                        /*directed=*/!opts.symmetrize);
      }
    }
    return Status(StatusCode::kInvalidInput, "unknown graph source");
}

const harness::Framework*
find_framework(const std::vector<harness::Framework>& frameworks,
               const std::string& name)
{
    static const std::pair<const char*, const char*> aliases[] = {
        {"gap", "GAP"},         {"suitesparse", "SuiteSparse"},
        {"galois", "Galois"},   {"nwgraph", "NWGraph"},
        {"graphit", "GraphIt"}, {"gkc", "GKC"},
    };
    for (const auto& [alias, display] : aliases) {
        if (name == alias || name == display) {
            for (const auto& fw : frameworks)
                if (fw.name == display)
                    return &fw;
        }
    }
    return nullptr;
}

} // namespace

int
exit_code_for(harness::FailureKind kind)
{
    switch (kind) {
      case harness::FailureKind::kNone:
        return kExitOk;
      case harness::FailureKind::kInvalidInput:
        return kExitInvalidInput;
      case harness::FailureKind::kKernelError:
      case harness::FailureKind::kUnsupported:
        return kExitKernelError;
      case harness::FailureKind::kTimeout:
        return kExitTimeout;
      case harness::FailureKind::kWrongResult:
        return kExitWrongResult;
      case harness::FailureKind::kFaultInjected:
        return kExitFaultInjected;
    }
    return kExitKernelError;
}

int
run_kernel(harness::Kernel kernel, const Options& opts)
{
    Timer timer;
    timer.start();
    auto built = build_input_graph(opts);
    if (!built.is_ok()) {
        std::cerr << "cannot build input graph: "
                  << built.status().to_string() << "\n";
        return kExitInvalidInput;
    }
    graph::CSRGraph g = *std::move(built);
    if (opts.symmetrize && g.is_directed()) {
        graph::EdgeList edges;
        for (vid_t v = 0; v < g.num_vertices(); ++v)
            for (vid_t u : g.out_neigh(v))
                edges.push_back({v, u});
        g = graph::build_graph(edges, g.num_vertices(), false);
    }
    auto made = harness::try_make_dataset(
        "cli", std::move(g), std::max(opts.trials * 4, 8), opts.seed + 1);
    if (!made.is_ok()) {
        std::cerr << "cannot build dataset: " << made.status().to_string()
                  << "\n";
        return exit_code_for(
            harness::failure_kind_from_status(made.status().code()));
    }
    harness::Dataset ds = *std::move(made);
    ds.delta = opts.delta;
    timer.stop();
    std::cout << "Graph: " << ds.g().num_vertices() << " vertices, "
              << ds.g().num_edges_directed() << " (directed) edges, built in "
              << std::fixed << std::setprecision(3) << timer.seconds()
              << " s\n";

    const auto frameworks = harness::make_frameworks();
    const harness::Framework* fw =
        find_framework(frameworks, opts.framework);
    if (fw == nullptr) {
        std::cerr << "unknown framework: " << opts.framework << "\n";
        return kExitInvalidInput;
    }
    const harness::Mode mode = opts.optimized ? harness::Mode::kOptimized
                                              : harness::Mode::kBaseline;
    std::cout << "Framework: " << fw->name << " ("
              << harness::to_string(mode) << " rules)\n";

    // GAPBS-style per-trial reporting; the harness rotates the sources.
    harness::RunOptions run_opts;
    run_opts.trials = 1;
    run_opts.verify = opts.verify;
    run_opts.trial_timeout_ms = opts.trial_timeout_ms;
    run_opts.max_attempts = opts.max_attempts;
    run_opts.trace_dir = opts.trace_dir;
    run_opts.metrics_path = opts.metrics_path;
    if (!run_opts.metrics_path.empty()) {
        support::EnvFingerprint fp = support::collect_fingerprint();
        fp.scales = "scale=" + std::to_string(opts.scale) +
                    " trials=" + std::to_string(opts.trials);
        if (auto s = support::append_fingerprint_record(
                run_opts.metrics_path, fp);
            !s.is_ok())
            std::cerr << s.to_string() << "\n";
    }
    double total = 0;
    bool all_verified = true;
    harness::FailureKind failure = harness::FailureKind::kNone;
    obs::TrialMetrics last_metrics;
    for (int trial = 0; trial < opts.trials; ++trial) {
        // Rotate sources by rotating the dataset's source list.
        std::rotate(ds.sources.begin(), ds.sources.begin() + 1,
                    ds.sources.end());
        const harness::CellResult cell =
            harness::run_cell(ds, *fw, kernel, mode, run_opts);
        if (cell.failure != harness::FailureKind::kNone) {
            std::cerr << "Trial DNF:    "
                      << harness::to_string(cell.failure)
                      << (cell.failure_message.empty()
                              ? ""
                              : " (" + cell.failure_message + ")")
                      << "\n";
            failure = cell.failure;
            break;
        }
        std::cout << "Trial Time:   " << std::setprecision(5)
                  << cell.avg_seconds << "\n";
        total += cell.avg_seconds;
        all_verified &= cell.verified;
        last_metrics = cell.metrics;
    }
    if (failure != harness::FailureKind::kNone)
        return exit_code_for(failure);
    std::cout << "Average Time: " << total / opts.trials << "\n";
    if (!last_metrics.empty()) {
        std::cout << "Workload:     iterations="
                  << last_metrics.counter_or("iterations")
                  << " edges_traversed="
                  << last_metrics.counter_or("edges_traversed")
                  << " frontier_peak="
                  << last_metrics.counter_or("frontier_peak")
                  << " parallel_efficiency=" << std::setprecision(3)
                  << last_metrics.parallel_efficiency << "\n";
    }
    // Only the forms this kernel touched were ever built (lazy store).
    std::cout << "Graph Memory: " << ds.bytes_resident()
              << " bytes of graph artifacts resident\n";
    if (opts.verify) {
        std::cout << "Verification: " << (all_verified ? "PASS" : "FAIL")
                  << "\n";
    }
    return all_verified ? kExitOk : kExitWrongResult;
}

int
kernel_main(harness::Kernel kernel, const std::string& name, int argc,
            char** argv)
{
    const std::optional<Options> opts = parse_options(argc, argv, name);
    if (!opts.has_value())
        return kExitUsage;
    return run_kernel(kernel, *opts);
}

} // namespace gm::cli
