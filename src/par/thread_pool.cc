#include "gm/par/thread_pool.hh"

#include "gm/obs/trace.hh"
#include "gm/support/env.hh"
#include "gm/support/log.hh"
#include "gm/support/timer.hh"
#include "gm/support/watchdog.hh"

namespace gm::par
{

namespace
{

thread_local bool tls_in_parallel = false;
thread_local int tls_serial_region = 0;

/**
 * Execute @p job on @p lane under the session generation @p job_gen that
 * the submitting thread observed.  Carrying the generation through the
 * pool (instead of letting lanes read the global) means a lane still
 * unwinding from a watchdog-abandoned trial keeps writing under its dead
 * generation and can never pollute the next trial's session.  When a
 * session is active, each lane's execution is recorded as a "par.lane"
 * span plus its busy nanoseconds, from which the suite derives per-cell
 * parallel efficiency.
 */
void
run_lane(const std::function<void(int)>& job, int lane,
         std::uint64_t job_gen)
{
    obs::SessionBinding bind(job_gen);
    if (job_gen == 0) {
        job(lane);
        return;
    }
    obs::ScopedSpan span("par.lane");
    const std::int64_t begin_ns = Timer::now_ns();
    job(lane);
    obs::counter_add(
        "par.busy_ns",
        static_cast<std::uint64_t>(Timer::now_ns() - begin_ns));
}

} // namespace

ThreadPool::ThreadPool(int num_threads)
{
    if (num_threads <= 0) {
        unsigned hw = std::thread::hardware_concurrency();
        num_threads = hw == 0 ? 1 : static_cast<int>(hw);
    }
    num_threads_ = num_threads;
    workers_.reserve(num_threads_ - 1);
    for (int lane = 1; lane < num_threads_; ++lane)
        workers_.emplace_back([this, lane] { worker_loop(lane); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    start_cv_.notify_all();
    for (auto& worker : workers_)
        worker.join();
}

ThreadPool&
ThreadPool::instance()
{
    static ThreadPool pool(static_cast<int>(env_int("GM_THREADS", 0)));
    return pool;
}

bool
ThreadPool::in_parallel_region()
{
    return tls_in_parallel;
}

bool
ThreadPool::in_serial_region()
{
    return tls_serial_region > 0;
}

SerialRegion::SerialRegion()
{
    ++tls_serial_region;
}

SerialRegion::~SerialRegion()
{
    --tls_serial_region;
}

void
ThreadPool::run(const std::function<void(int)>& job)
{
    if (tls_in_parallel || tls_serial_region > 0) {
        // Nested parallelism (or an explicit serial region) degrades to
        // serial execution on this thread; its time is already inside the
        // outer lane's busy span / the request's execute span.
        job(0);
        return;
    }
    std::lock_guard<std::mutex> run_lock(run_mutex_);
    const std::uint64_t job_gen = obs::current_session_gen();
    if (job_gen != 0)
        obs::counter_max("par.lanes",
                         static_cast<std::uint64_t>(num_threads_));
    if (num_threads_ == 1) {
        tls_in_parallel = true;
        run_lane(job, 0, job_gen);
        tls_in_parallel = false;
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = &job;
        job_cancel_ = support::current_cancel_token();
        job_gen_ = job_gen;
        pending_ = num_threads_ - 1;
        ++generation_;
    }
    start_cv_.notify_all();

    tls_in_parallel = true;
    run_lane(job, 0, job_gen);
    tls_in_parallel = false;

    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    job_ = nullptr;
    job_cancel_ = nullptr;
}

void
ThreadPool::worker_loop(int lane)
{
    std::uint64_t seen_generation = 0;
    for (;;) {
        const std::function<void(int)>* job = nullptr;
        const support::CancelToken* cancel = nullptr;
        std::uint64_t job_gen = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            start_cv_.wait(lock, [&] {
                return shutdown_ || generation_ != seen_generation;
            });
            if (shutdown_)
                return;
            seen_generation = generation_;
            job = job_;
            cancel = job_cancel_;
            job_gen = job_gen_;
        }
        {
            support::ScopedCancelToken scope(cancel);
            tls_in_parallel = true;
            run_lane(*job, lane, job_gen);
            tls_in_parallel = false;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --pending_;
        }
        done_cv_.notify_one();
    }
}

} // namespace gm::par
