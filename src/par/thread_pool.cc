#include "gm/par/thread_pool.hh"

#include "gm/support/env.hh"
#include "gm/support/log.hh"
#include "gm/support/watchdog.hh"

namespace gm::par
{

namespace
{

thread_local bool tls_in_parallel = false;

} // namespace

ThreadPool::ThreadPool(int num_threads)
{
    if (num_threads <= 0) {
        unsigned hw = std::thread::hardware_concurrency();
        num_threads = hw == 0 ? 1 : static_cast<int>(hw);
    }
    num_threads_ = num_threads;
    workers_.reserve(num_threads_ - 1);
    for (int lane = 1; lane < num_threads_; ++lane)
        workers_.emplace_back([this, lane] { worker_loop(lane); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    start_cv_.notify_all();
    for (auto& worker : workers_)
        worker.join();
}

ThreadPool&
ThreadPool::instance()
{
    static ThreadPool pool(static_cast<int>(env_int("GM_THREADS", 0)));
    return pool;
}

bool
ThreadPool::in_parallel_region()
{
    return tls_in_parallel;
}

void
ThreadPool::run(const std::function<void(int)>& job)
{
    if (tls_in_parallel || num_threads_ == 1) {
        // Nested parallelism degrades to serial execution on this lane.
        bool saved = tls_in_parallel;
        tls_in_parallel = true;
        job(0);
        tls_in_parallel = saved;
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = &job;
        job_cancel_ = support::current_cancel_token();
        pending_ = num_threads_ - 1;
        ++generation_;
    }
    start_cv_.notify_all();

    tls_in_parallel = true;
    job(0);
    tls_in_parallel = false;

    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    job_ = nullptr;
    job_cancel_ = nullptr;
}

void
ThreadPool::worker_loop(int lane)
{
    std::uint64_t seen_generation = 0;
    for (;;) {
        const std::function<void(int)>* job = nullptr;
        const support::CancelToken* cancel = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            start_cv_.wait(lock, [&] {
                return shutdown_ || generation_ != seen_generation;
            });
            if (shutdown_)
                return;
            seen_generation = generation_;
            job = job_;
            cancel = job_cancel_;
        }
        {
            support::ScopedCancelToken scope(cancel);
            tls_in_parallel = true;
            (*job)(lane);
            tls_in_parallel = false;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --pending_;
        }
        done_cv_.notify_one();
    }
}

} // namespace gm::par
