#include "gm/par/thread_pool.hh"

#include "gm/obs/trace.hh"
#include "gm/support/env.hh"
#include "gm/support/log.hh"
#include "gm/support/timer.hh"
#include "gm/support/watchdog.hh"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace gm::par
{

namespace
{

thread_local bool tls_in_parallel = false;
thread_local int tls_serial_region = 0;
thread_local LaneLease* tls_lease = nullptr;

/**
 * Execute @p job on @p lane under the session generation @p job_gen that
 * the submitting thread observed.  Carrying the generation through the
 * pool (instead of letting lanes read the global) means a lane still
 * unwinding from a watchdog-abandoned trial keeps writing under its dead
 * generation and can never pollute the next trial's session.  When a
 * session is active, each lane's execution is recorded as a "par.lane"
 * span plus its busy nanoseconds, from which the suite and gm::serve
 * derive parallel efficiency.
 */
void
run_lane(FunctionRef<void(int)> job, int lane, std::uint64_t job_gen)
{
    obs::SessionBinding bind(job_gen);
    if (job_gen == 0) {
        job(lane);
        return;
    }
    obs::ScopedSpan span("par.lane");
    const std::int64_t begin_ns = Timer::now_ns();
    job(lane);
    obs::counter_add(
        "par.busy_ns",
        static_cast<std::uint64_t>(Timer::now_ns() - begin_ns));
}

/** Pin the calling thread to @p cpu modulo the online-CPU count. */
void
pin_to_cpu(int cpu)
{
#ifdef __linux__
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        return;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<unsigned>(cpu) % hw, &set);
    pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
    (void)cpu;
#endif
}

} // namespace

ThreadPool::ThreadPool(int num_threads)
{
    if (num_threads <= 0) {
        unsigned hw = std::thread::hardware_concurrency();
        num_threads = hw == 0 ? 1 : static_cast<int>(hw);
    }
    num_threads_ = num_threads;
    pin_threads_ = env_int("GM_PIN_THREADS", 0) != 0;
    const int worker_count = num_threads_ - 1;
    assignment_.assign(static_cast<std::size_t>(worker_count), nullptr);
    lane_id_.assign(static_cast<std::size_t>(worker_count), 0);
    free_.reserve(static_cast<std::size_t>(worker_count));
    workers_.reserve(static_cast<std::size_t>(worker_count));
    for (int slot = 0; slot < worker_count; ++slot) {
        free_.push_back(slot);
        workers_.emplace_back([this, slot] { worker_loop(slot); });
    }
    if (pin_threads_) {
        // Pin the constructing thread to core 0.  This placement is only
        // meaningful for single-client measurement runs (suite, bench),
        // where the first-touch thread is the one that submits every job
        // and so really is lane 0 of every lease; under concurrent lane
        // leasing (gm::serve) lease owners are arbitrary threads and only
        // the worker lanes below keep a topology-stable pin.
        pin_to_cpu(0);
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    start_cv_.notify_all();
    for (auto& worker : workers_)
        worker.join();
}

ThreadPool&
ThreadPool::instance()
{
    static ThreadPool pool(static_cast<int>(env_int("GM_THREADS", 0)));
    return pool;
}

bool
ThreadPool::in_parallel_region()
{
    return tls_in_parallel;
}

bool
ThreadPool::in_serial_region()
{
    return tls_serial_region > 0;
}

int
ThreadPool::current_width()
{
    if (tls_in_parallel || tls_serial_region > 0)
        return 1;
    if (tls_lease != nullptr)
        return tls_lease->width();
    return instance().num_threads();
}

SerialRegion::SerialRegion()
{
    ++tls_serial_region;
}

SerialRegion::~SerialRegion()
{
    --tls_serial_region;
}

LaneLease*
LaneLease::current()
{
    return tls_lease;
}

LaneLease::LaneLease(int width)
{
    // Inside a lane, a SerialRegion, or an enclosing lease: adopt the
    // context instead of acquiring (run() consults the innermost owner).
    if (tls_in_parallel || tls_serial_region > 0) {
        adopted_ = true;
        width_ = 1;
        return;
    }
    if (tls_lease != nullptr) {
        adopted_ = true;
        width_ = tls_lease->width();
        return;
    }
    ThreadPool& pool = ThreadPool::instance();
    if (width > pool.num_threads())
        width = pool.num_threads();
    if (width < 1)
        width = 1;
    state_.lanes_held = pool.acquire_workers(width - 1, &state_);
    state_.width = 1 + state_.lanes_held;
    width_ = state_.width;
    tls_lease = this;
}

LaneLease::~LaneLease()
{
    if (adopted_)
        return;
    tls_lease = nullptr;
    if (state_.lanes_held == 0)
        return;
    {
        std::lock_guard<std::mutex> lock(state_.mu);
        state_.released = true;
    }
    state_.cv.notify_all();
    // Wait until every worker has fully detached (and re-queued itself as
    // free) before the state goes out of scope.  The handshake runs on
    // the pool's own mutex/cv: a worker's final act is an increment and
    // notify under pool.mutex_, so once the predicate holds — observable
    // only after that worker released pool.mutex_ — no worker touches
    // state_ (or any lease memory) again, and it can safely be destroyed.
    ThreadPool& pool = ThreadPool::instance();
    std::unique_lock<std::mutex> lock(pool.mutex_);
    pool.detach_cv_.wait(
        lock, [this] { return state_.returned == state_.lanes_held; });
}

int
ThreadPool::acquire_workers(int want, detail::LeaseState* state)
{
    if (want <= 0)
        return 0;
    int got = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        while (got < want && !free_.empty()) {
            const int slot = free_.back();
            free_.pop_back();
            assignment_[static_cast<std::size_t>(slot)] = state;
            lane_id_[static_cast<std::size_t>(slot)] = 1 + got;
            ++got;
        }
    }
    if (got > 0)
        start_cv_.notify_all();
    return got;
}

int
ThreadPool::run(FunctionRef<void(int)> job)
{
    if (tls_in_parallel || tls_serial_region > 0) {
        // Nested parallelism (or an explicit serial region) degrades to
        // serial execution on this thread; its time is already inside the
        // outer lane's busy span / the request's execute span.
        job(0);
        return 1;
    }
    if (tls_lease == nullptr) {
        // Ephemeral lease over whatever is free right now; released when
        // this fork joins.  Long-lived lease holders (serve requests)
        // amortize this acquisition over many forks.
        LaneLease ephemeral(num_threads_);
        return run(job);
    }
    detail::LeaseState& state = tls_lease->state_;
    const std::uint64_t job_gen = obs::current_session_gen();
    const int width = tls_lease->width();
    if (job_gen != 0)
        obs::counter_max("par.lanes", static_cast<std::uint64_t>(width));
    if (width == 1) {
        tls_in_parallel = true;
        try {
            run_lane(job, 0, job_gen);
        } catch (...) {
            tls_in_parallel = false;
            throw;
        }
        tls_in_parallel = false;
        return 1;
    }

    {
        std::lock_guard<std::mutex> lock(state.mu);
        state.job = job;
        state.cancel = support::current_cancel_token();
        state.obs_gen = job_gen;
        state.pending = width - 1;
        ++state.job_seq;
    }
    state.cv.notify_all();

    tls_in_parallel = true;
    try {
        run_lane(job, 0, job_gen);
    } catch (...) {
        // Join the lanes before unwinding: they reference the job.
        tls_in_parallel = false;
        std::unique_lock<std::mutex> lock(state.mu);
        state.done_cv.wait(lock, [&state] { return state.pending == 0; });
        throw;
    }
    tls_in_parallel = false;

    std::unique_lock<std::mutex> lock(state.mu);
    state.done_cv.wait(lock, [&state] { return state.pending == 0; });
    return width;
}

void
ThreadPool::serve_lease(detail::LeaseState& state, int lane)
{
    std::uint64_t seen_seq = 0;
    std::unique_lock<std::mutex> lock(state.mu);
    for (;;) {
        state.cv.wait(lock, [&] {
            return state.released || state.job_seq != seen_seq;
        });
        if (state.released)
            return;
        seen_seq = state.job_seq;
        const FunctionRef<void(int)> job = state.job;
        const support::CancelToken* cancel = state.cancel;
        const std::uint64_t job_gen = state.obs_gen;
        lock.unlock();
        {
            support::ScopedCancelToken scope(cancel);
            tls_in_parallel = true;
            run_lane(job, lane, job_gen);
            tls_in_parallel = false;
        }
        lock.lock();
        if (--state.pending == 0)
            state.done_cv.notify_all();
    }
}

void
ThreadPool::worker_loop(int slot)
{
    if (pin_threads_)
        pin_to_cpu(slot + 1);
    for (;;) {
        detail::LeaseState* state = nullptr;
        int lane = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            start_cv_.wait(lock, [&] {
                return shutdown_ ||
                       assignment_[static_cast<std::size_t>(slot)] !=
                           nullptr;
            });
            if (shutdown_)
                return;
            state = assignment_[static_cast<std::size_t>(slot)];
            lane = lane_id_[static_cast<std::size_t>(slot)];
        }
        serve_lease(*state, lane);
        {
            // Re-queue as free and tell the releasing owner this lane is
            // fully detached, in one pool-lock critical section.  The
            // increment and notify deliberately use the pool's mutex/cv,
            // not the lease's: ~LaneLease destroys the LeaseState as soon
            // as it observes returned == lanes_held, and it cannot observe
            // that until this lock is released — after which this thread
            // never touches the state again.  (Notifying through
            // lease-owned state after the final increment would race that
            // destruction: the notify itself touches the state.)
            std::lock_guard<std::mutex> lock(mutex_);
            assignment_[static_cast<std::size_t>(slot)] = nullptr;
            free_.push_back(slot);
            ++state->returned;
            detach_cv_.notify_all();
        }
    }
}

} // namespace gm::par
