/**
 * @file
 * Non-owning callable reference.
 *
 * ThreadPool::run() forks a closure onto the lanes and joins before
 * returning, so the callable always outlives the call — there is nothing
 * for std::function to own.  FunctionRef captures {object pointer,
 * trampoline} in two words, making a fork allocation-free even for
 * capture-heavy lambdas; bench/micro_kernels measures the win against the
 * std::function path it replaced.
 */
#pragma once

#include <type_traits>
#include <utility>

namespace gm::par
{

template <typename Sig>
class FunctionRef;

/** Lightweight view of a callable with signature R(Args...). */
template <typename R, typename... Args>
class FunctionRef<R(Args...)>
{
  public:
    FunctionRef() = default;

    /** Bind to any callable lvalue (or a temporary that outlives the
     *  call, which a synchronous fork-join guarantees). */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, FunctionRef>>>
    FunctionRef(F&& f) // NOLINT(google-explicit-constructor)
        : obj_(const_cast<void*>(
              static_cast<const void*>(std::addressof(f)))),
          call_([](void* obj, Args... args) -> R {
              return (*static_cast<std::remove_reference_t<F>*>(obj))(
                  std::forward<Args>(args)...);
          })
    {
    }

    R
    operator()(Args... args) const
    {
        return call_(obj_, std::forward<Args>(args)...);
    }

    explicit operator bool() const { return call_ != nullptr; }

  private:
    void* obj_ = nullptr;
    R (*call_)(void*, Args...) = nullptr;
};

} // namespace gm::par
