/**
 * @file
 * Reusable barriers for SPMD-style kernels (delta-stepping, label
 * propagation rounds) that run one closure per lane and synchronize
 * between phases.
 *
 * Two implementations with the same interface:
 *  - Barrier: mutex/condvar; lanes sleep while waiting.  Right for long
 *    phases or oversubscribed machines.
 *  - SpinBarrier: sense-reversing atomic barrier; lanes spin (with yield)
 *    on a generation word.  Right for the short inner rounds of iterative
 *    kernels where a futex sleep/wake costs more than the phase itself.
 *
 * Sizing rule under lane leases: construct the barrier from the width of a
 * LaneLease you hold (or the lane_count argument parallel_lanes passes to
 * its callback) — NOT from a lane count predicted before forking.  An
 * ephemeral lease may be granted fewer lanes than effective_lanes()
 * reported, and a barrier sized for more parties than arrive deadlocks.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "gm/par/thread_pool.hh"

namespace gm::par
{

/** Reusable generation-counting barrier (sleeping). */
class Barrier
{
  public:
    /** @param parties Number of lanes that must arrive before release. */
    explicit Barrier(int parties) : parties_(parties) {}

    /** Block until all parties have arrived at this generation. */
    void
    wait()
    {
        if (parties_ <= 1)
            return;
        std::unique_lock<std::mutex> lock(mutex_);
        const std::uint64_t my_generation = generation_;
        if (++waiting_ == parties_) {
            waiting_ = 0;
            ++generation_;
            cv_.notify_all();
            return;
        }
        cv_.wait(lock, [&] { return generation_ != my_generation; });
    }

  private:
    std::mutex mutex_;
    std::condition_variable cv_;
    const int parties_;
    int waiting_ = 0;
    std::uint64_t generation_ = 0;
};

/**
 * Reusable sense-reversing barrier (spinning).
 *
 * The last lane to arrive resets the arrival count and bumps the
 * generation (release); everyone else spins on the generation (acquire),
 * yielding between probes so oversubscribed runs still make progress.
 * Reversal is encoded in the generation counter itself, so the barrier is
 * immediately reusable for the next phase.
 */
class SpinBarrier
{
  public:
    /** @param parties Number of lanes that must arrive before release. */
    explicit SpinBarrier(int parties) : parties_(parties) {}

    /** Block (spin) until all parties have arrived at this generation. */
    void
    wait()
    {
        if (parties_ <= 1)
            return;
        const std::uint64_t my_generation =
            generation_.load(std::memory_order_relaxed);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) ==
            parties_ - 1) {
            arrived_.store(0, std::memory_order_relaxed);
            generation_.store(my_generation + 1,
                              std::memory_order_release);
            return;
        }
        while (generation_.load(std::memory_order_acquire) ==
               my_generation) {
            std::this_thread::yield();
        }
    }

  private:
    const int parties_;
    std::atomic<int> arrived_{0};
    std::atomic<std::uint64_t> generation_{0};
};

/**
 * Lane count an SPMD region entered right now would get — an upper bound
 * when no lease is held (see ThreadPool::current_width()).  Use only for
 * capacity hints (per-lane buffer reservations); for barrier parties or
 * anything that must match the lanes actually running, hold a LaneLease
 * and use its width().
 */
inline int
effective_lanes()
{
    return ThreadPool::current_width();
}

} // namespace gm::par
