/**
 * @file
 * Centralized reusable barrier for SPMD-style kernels (delta-stepping,
 * label propagation rounds) that run one closure per lane and synchronize
 * between phases.
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "gm/par/thread_pool.hh"

namespace gm::par
{

/** Reusable generation-counting barrier. */
class Barrier
{
  public:
    /** @param parties Number of lanes that must arrive before release. */
    explicit Barrier(int parties) : parties_(parties) {}

    /** Block until all parties have arrived at this generation. */
    void
    wait()
    {
        if (parties_ <= 1)
            return;
        std::unique_lock<std::mutex> lock(mutex_);
        const std::uint64_t my_generation = generation_;
        if (++waiting_ == parties_) {
            waiting_ = 0;
            ++generation_;
            cv_.notify_all();
            return;
        }
        cv_.wait(lock, [&] { return generation_ != my_generation; });
    }

  private:
    std::mutex mutex_;
    std::condition_variable cv_;
    const int parties_;
    int waiting_ = 0;
    std::uint64_t generation_ = 0;
};

/** Lane count an SPMD region entered right now would actually get. */
inline int
effective_lanes()
{
    return ThreadPool::in_parallel_region()
               ? 1
               : ThreadPool::instance().num_threads();
}

} // namespace gm::par
