/**
 * @file
 * Atomic helpers over plain arrays via std::atomic_ref.
 *
 * Graph kernels keep vertex labels in plain vectors and race on them with
 * CAS loops; these wrappers express the common idioms (compare-and-swap,
 * fetch-min, atomic add) the GAP reference code uses.
 */
#pragma once

#include <atomic>

namespace gm::par
{

/** CAS on a plain location; returns true when the swap happened. */
template <typename T>
bool
compare_and_swap(T& location, T expected, T desired)
{
    std::atomic_ref<T> ref(location);
    return ref.compare_exchange_strong(expected, desired,
                                       std::memory_order_relaxed);
}

/** Atomically location = min(location, value); true if it decreased. */
template <typename T>
bool
fetch_min(T& location, T value)
{
    std::atomic_ref<T> ref(location);
    T current = ref.load(std::memory_order_relaxed);
    while (value < current) {
        if (ref.compare_exchange_weak(current, value,
                                      std::memory_order_relaxed))
            return true;
    }
    return false;
}

/** Atomic fetch-add on a plain integer location. */
template <typename T>
T
fetch_add(T& location, T delta)
{
    std::atomic_ref<T> ref(location);
    return ref.fetch_add(delta, std::memory_order_relaxed);
}

/** Atomic add for floating-point locations (CAS loop). */
template <typename T>
void
atomic_add_float(T& location, T delta)
{
    std::atomic_ref<T> ref(location);
    T current = ref.load(std::memory_order_relaxed);
    while (!ref.compare_exchange_weak(current, current + delta,
                                      std::memory_order_relaxed)) {
    }
}

/** Relaxed atomic load of a plain location. */
template <typename T>
T
atomic_load(const T& location)
{
    // atomic_ref<const T> is not available until C++23; the cast is safe
    // because load() never writes.
    std::atomic_ref<T> ref(const_cast<T&>(location));
    return ref.load(std::memory_order_relaxed);
}

/** Relaxed atomic store to a plain location. */
template <typename T>
void
atomic_store(T& location, T value)
{
    std::atomic_ref<T> ref(location);
    ref.store(value, std::memory_order_relaxed);
}

} // namespace gm::par
