/**
 * @file
 * Persistent fork-join thread pool.
 *
 * This is the single parallel substrate shared by every framework analogue in
 * the repository, standing in for the OpenMP / TBB / cilk runtimes the
 * evaluated frameworks use.  Keeping one substrate is the reproduction of the
 * paper's "same hardware for every framework" control.
 *
 * Model: the pool owns N-1 worker threads; run() executes a job closure on
 * all N lanes (callers' thread is lane 0) and returns when every lane has
 * finished.  Nested run() calls from inside a lane degrade to serial
 * execution on that lane, which keeps composed algorithms correct.
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gm::support
{
class CancelToken;
} // namespace gm::support

namespace gm::par
{

/** Fork-join pool; use ThreadPool::instance() for the process-wide pool. */
class ThreadPool
{
  public:
    /** @param num_threads Lane count; 0 means hardware_concurrency. */
    explicit ThreadPool(int num_threads = 0);

    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Process-wide pool; size taken from GM_THREADS or the hardware. */
    static ThreadPool& instance();

    /** Number of lanes (including the caller's lane). */
    int num_threads() const { return num_threads_; }

    /**
     * Run @p job on every lane and wait for completion.
     *
     * @param job Receives the lane id in [0, num_threads()).
     *
     * Safe to call from multiple threads concurrently: submissions are
     * serialized internally (one fork-join job owns the lanes at a time);
     * a call made while the caller is already inside a pool job, or while
     * a SerialRegion is active on the calling thread, degrades to serial
     * execution on that thread instead of queueing.
     */
    void run(const std::function<void(int)>& job);

    /** True when the calling thread is currently inside a pool job. */
    static bool in_parallel_region();

    /** True when a SerialRegion is active on the calling thread. */
    static bool in_serial_region();

  private:
    friend class SerialRegion;

    void worker_loop(int lane);

    int num_threads_;
    std::vector<std::thread> workers_;

    /** Serializes concurrent run() callers; the fork-join state below
     *  (job_, pending_, generation_) describes exactly one job at a time. */
    std::mutex run_mutex_;
    std::mutex mutex_;
    std::condition_variable start_cv_;
    std::condition_variable done_cv_;
    const std::function<void(int)>* job_ = nullptr;
    /** Caller's cancellation token, installed in every lane for the job's
     *  duration so supervised trials can cancel their pool work. */
    const support::CancelToken* job_cancel_ = nullptr;
    /** Trace-session generation the submitter observed; lanes bind to it
     *  so records from abandoned trials can't pollute a newer session. */
    std::uint64_t job_gen_ = 0;
    std::uint64_t generation_ = 0;
    int pending_ = 0;
    bool shutdown_ = false;
};

/**
 * RAII: while alive on the constructing thread, every parallel primitive
 * (ThreadPool::run, parallel_for, parallel_reduce, ...) degrades to serial
 * execution on that thread instead of forking onto the shared pool.
 *
 * Unlike the implicit nested-run degrade, cancellation inside a serial
 * region still *throws* CancelledError at the outermost level — the region
 * marks "this thread is one lane of some higher-level concurrency" (a
 * serve worker handling one request), not "we are inside a pool job whose
 * boundary exceptions must not cross".  Regions nest; the thread returns
 * to normal forking behaviour when the outermost region is destroyed.
 */
class SerialRegion
{
  public:
    SerialRegion();
    ~SerialRegion();

    SerialRegion(const SerialRegion&) = delete;
    SerialRegion& operator=(const SerialRegion&) = delete;
};

} // namespace gm::par
