/**
 * @file
 * Persistent lane-leasing thread pool.
 *
 * This is the single parallel substrate shared by every framework analogue in
 * the repository, standing in for the OpenMP / TBB / cilk runtimes the
 * evaluated frameworks use.  Keeping one substrate is the reproduction of the
 * paper's "same hardware for every framework" control.
 *
 * Model: the pool owns N-1 worker threads ("lanes" 1..N-1; the submitting
 * thread is always lane 0).  Work is executed under a LaneLease — an RAII
 * grant of K disjoint lanes.  A thread holding a lease forks jobs onto
 * exactly its leased lanes, so two threads holding disjoint leases run
 * genuinely in parallel instead of serializing on a global job slot; this
 * is what lets gm::serve execute several multi-lane requests at once.
 * Threads without a lease get an ephemeral one per fork (best-effort over
 * the currently free workers).  Nested run() calls from inside a lane
 * degrade to serial execution on that lane, which keeps composed
 * algorithms correct.
 *
 * Determinism contract: nothing above this layer may depend on how many
 * lanes a lease actually granted.  parallel_reduce partitions work on a
 * fixed chunk grid (a function of the iteration count only) and combines
 * in chunk order, and every kernel is written so racy updates converge to
 * order-independent fixpoints — so results are bit-identical at any
 * GM_THREADS and any lease width.
 *
 * Set GM_PIN_THREADS=1 to pin worker lanes to cores round-robin
 * (topology-aware placement for measurement runs).  The thread that
 * constructs the pool is pinned to core 0 as well, which is only
 * meaningful for single-client measurement runs (suite, bench) where one
 * thread submits every job for the life of the process; under concurrent
 * lane leasing (gm::serve) lease owners are arbitrary threads — only the
 * worker lanes keep a topology-stable pin there.
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "gm/par/function_ref.hh"

namespace gm::support
{
class CancelToken;
} // namespace gm::support

namespace gm::par
{

class LaneLease;

namespace detail
{

/** Shared fork-join state of one lease: the owner dispatches jobs into it,
 *  the leased workers execute them until released. */
struct LeaseState
{
    std::mutex mu;
    std::condition_variable cv;      ///< workers wait for jobs / release
    std::condition_variable done_cv; ///< owner waits for joins / returns

    FunctionRef<void(int)> job;
    const support::CancelToken* cancel = nullptr;
    std::uint64_t obs_gen = 0;
    std::uint64_t job_seq = 0; ///< bumped once per dispatched job
    int pending = 0;           ///< lanes still running the current job

    int width = 1;       ///< granted lanes, including the owner's lane 0
    int lanes_held = 0;  ///< pool workers attached (width - 1)
    bool released = false;
    /** Workers fully detached and back in the pool.  Guarded by the
     *  pool's mutex_ (NOT mu): the detach handshake must run entirely on
     *  pool-owned synchronization, because the releasing owner destroys
     *  this state the instant the last detach is observed — a worker
     *  touching lease-owned mu/cv after its increment would race that
     *  destruction. */
    int returned = 0;
};

} // namespace detail

/** Lane-leasing fork-join pool; ThreadPool::instance() is process-wide. */
class ThreadPool
{
  public:
    /** @param num_threads Lane count; 0 means hardware_concurrency. */
    explicit ThreadPool(int num_threads = 0);

    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Process-wide pool; size taken from GM_THREADS or the hardware. */
    static ThreadPool& instance();

    /** Number of lanes (including the caller's lane). */
    int num_threads() const { return num_threads_; }

    /**
     * Run @p job on the calling thread's lanes and wait for completion.
     *
     * @param job Non-owning callable receiving the lane id in [0, width).
     * @return The width actually used (every lane id passed was < it).
     *
     * Under an active LaneLease the job runs on exactly the leased lanes;
     * without one an ephemeral lease over the currently free workers is
     * taken for the duration of the call.  A call made while the caller
     * is already inside a pool job, or while a SerialRegion is active on
     * the calling thread, degrades to serial execution on that thread.
     */
    int run(FunctionRef<void(int)> job);

    /** True when the calling thread is currently inside a pool job. */
    static bool in_parallel_region();

    /** True when a SerialRegion is active on the calling thread. */
    static bool in_serial_region();

    /**
     * Width a run() from this thread would use right now: 1 inside a
     * lane or a SerialRegion, the lease width under a LaneLease, and the
     * full lane count otherwise (an upper bound there — an ephemeral
     * lease may be granted fewer if other leases hold workers; SPMD
     * kernels that size shared state by lane count must hold their own
     * LaneLease and use its width()).
     */
    static int current_width();

  private:
    friend class LaneLease;
    friend class SerialRegion;

    void worker_loop(int slot);
    /** Run jobs for @p state on lease lane @p lane until released. */
    void serve_lease(detail::LeaseState& state, int lane);
    /** Assign up to @p want free workers to @p state; returns the count
     *  granted.  Lease lane ids are handed out from 1 upward. */
    int acquire_workers(int want, detail::LeaseState* state);

    int num_threads_;
    bool pin_threads_ = false;
    std::vector<std::thread> workers_;

    std::mutex mutex_; ///< guards free_, assignment_, shutdown_, and
                       ///< every LeaseState::returned
    std::condition_variable start_cv_;
    /** Signals lease detachments to ~LaneLease.  Pool-owned (it outlives
     *  every lease) so workers never notify through lease memory. */
    std::condition_variable detach_cv_;
    std::vector<int> free_;                         ///< free worker slots
    std::vector<detail::LeaseState*> assignment_;   ///< per-slot lease
    std::vector<int> lane_id_;                      ///< per-slot lease lane
    bool shutdown_ = false;
};

/**
 * RAII grant of up to @p width lanes (the constructing thread's lane 0
 * plus up to width-1 pool workers held exclusively until destruction).
 * All parallel primitives called on this thread while the lease is alive
 * execute on exactly these lanes, so concurrent lease holders proceed in
 * parallel on disjoint workers.
 *
 * Acquisition is best-effort: width() reports what was actually granted
 * (at least 1 — the owner always has its own lane).  Results never depend
 * on the granted width (see the determinism contract above), only speed
 * does.  Constructing a lease while one is already active on the thread
 * (or inside a pool lane / SerialRegion) adopts the enclosing context
 * instead of acquiring: width() reports the enclosing width and
 * destruction releases nothing.
 */
class LaneLease
{
  public:
    explicit LaneLease(int width);
    ~LaneLease();

    LaneLease(const LaneLease&) = delete;
    LaneLease& operator=(const LaneLease&) = delete;

    /** Lanes this thread's parallel work runs on (1 = serial). */
    int width() const { return width_; }

    /** The calling thread's innermost owned lease, or null. */
    static LaneLease* current();

  private:
    friend class ThreadPool;

    detail::LeaseState state_;
    int width_ = 1;
    bool adopted_ = false;
};

/**
 * RAII: while alive on the constructing thread, every parallel primitive
 * (ThreadPool::run, parallel_for, parallel_reduce, ...) degrades to serial
 * execution on that thread instead of forking onto the shared pool.
 *
 * Unlike the implicit nested-run degrade, cancellation inside a serial
 * region still *throws* CancelledError at the outermost level — the region
 * marks "this thread is one lane of some higher-level concurrency", not
 * "we are inside a pool job whose boundary exceptions must not cross".
 * Regions nest; the thread returns to normal forking behaviour when the
 * outermost region is destroyed.  (gm::serve used to pin every request
 * under one of these; requests now take a LaneLease of their declared
 * width instead, and a width-1 lease is the exact serial equivalent.)
 */
class SerialRegion
{
  public:
    SerialRegion();
    ~SerialRegion();

    SerialRegion(const SerialRegion&) = delete;
    SerialRegion& operator=(const SerialRegion&) = delete;
};

} // namespace gm::par
