/**
 * @file
 * Persistent fork-join thread pool.
 *
 * This is the single parallel substrate shared by every framework analogue in
 * the repository, standing in for the OpenMP / TBB / cilk runtimes the
 * evaluated frameworks use.  Keeping one substrate is the reproduction of the
 * paper's "same hardware for every framework" control.
 *
 * Model: the pool owns N-1 worker threads; run() executes a job closure on
 * all N lanes (callers' thread is lane 0) and returns when every lane has
 * finished.  Nested run() calls from inside a lane degrade to serial
 * execution on that lane, which keeps composed algorithms correct.
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gm::support
{
class CancelToken;
} // namespace gm::support

namespace gm::par
{

/** Fork-join pool; use ThreadPool::instance() for the process-wide pool. */
class ThreadPool
{
  public:
    /** @param num_threads Lane count; 0 means hardware_concurrency. */
    explicit ThreadPool(int num_threads = 0);

    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Process-wide pool; size taken from GM_THREADS or the hardware. */
    static ThreadPool& instance();

    /** Number of lanes (including the caller's lane). */
    int num_threads() const { return num_threads_; }

    /**
     * Run @p job on every lane and wait for completion.
     *
     * @param job Receives the lane id in [0, num_threads()).
     */
    void run(const std::function<void(int)>& job);

    /** True when the calling thread is currently inside a pool job. */
    static bool in_parallel_region();

  private:
    void worker_loop(int lane);

    int num_threads_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable start_cv_;
    std::condition_variable done_cv_;
    const std::function<void(int)>* job_ = nullptr;
    /** Caller's cancellation token, installed in every lane for the job's
     *  duration so supervised trials can cancel their pool work. */
    const support::CancelToken* job_cancel_ = nullptr;
    /** Trace-session generation the submitter observed; lanes bind to it
     *  so records from abandoned trials can't pollute a newer session. */
    std::uint64_t job_gen_ = 0;
    std::uint64_t generation_ = 0;
    int pending_ = 0;
    bool shutdown_ = false;
};

} // namespace gm::par
