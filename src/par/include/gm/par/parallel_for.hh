/**
 * @file
 * Data-parallel loop and reduction primitives on top of ThreadPool.
 *
 * Three schedules mirror the OpenMP trio the evaluated frameworks rely on:
 *  - kStatic:  contiguous blocks, one per lane — best locality.
 *  - kDynamic: lanes grab fixed-size chunks from an atomic cursor — best
 *              load balance for skewed work (power-law graphs).
 *  - kCyclic:  lane t handles iterations t, t+N, t+2N, ... — the NWGraph
 *              paper-described distribution for triangle counting.
 *
 * All primitives execute on the calling thread's LaneLease (taking an
 * ephemeral lease when none is active), so concurrent callers holding
 * disjoint leases run in parallel.
 *
 * parallel_reduce is deterministic by construction: iterations are
 * partitioned on a fixed chunk grid derived from the iteration count
 * alone (never from the lane count), each chunk is accumulated serially
 * in index order, and chunk partials are combined in ascending chunk
 * order — the same fold the one-lane path performs.  Floating-point
 * reductions are therefore bit-identical at any GM_THREADS / lease width.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "gm/par/thread_pool.hh"
#include "gm/support/watchdog.hh"

namespace gm::par
{

/** Loop iteration-assignment policy. */
enum class Schedule { kStatic, kDynamic, kCyclic };

namespace detail
{

/** Iterations between cancellation polls in contiguous loops; amortizes
 *  the relaxed atomic load to ~zero cost in kernel hot paths. */
inline constexpr std::uint64_t kCancelPollMask = 0x3FF;

/** Target chunk count of the deterministic reduction grid.  The grid is
 *  a function of the iteration count only — two runs at different lane
 *  counts walk identical chunks and combine them in identical order. */
inline constexpr std::int64_t kReduceChunkTarget = 256;

/** Chunk length of the deterministic grid over @p n iterations. */
template <typename Index>
Index
reduce_chunk_length(Index n)
{
    const auto wide = static_cast<std::int64_t>(n);
    const std::int64_t chunk =
        (wide + kReduceChunkTarget - 1) / kReduceChunkTarget;
    return chunk < 1 ? Index{1} : static_cast<Index>(chunk);
}

} // namespace detail

/**
 * Parallel for over [begin, end).
 *
 * @param fn    Body receiving the iteration index.
 * @param sched Iteration-assignment policy.
 * @param grain Chunk size for kDynamic (ignored otherwise).
 */
template <typename Index, typename Fn>
void
parallel_for(Index begin, Index end, Fn&& fn,
             Schedule sched = Schedule::kDynamic, Index grain = 0)
{
    if (begin >= end)
        return;
    const Index n = end - begin;

    const auto run_serial = [&] {
        // Nested (in-lane) calls must not throw across the pool boundary;
        // they bail out silently and the outermost serial level throws.
        // A SerialRegion is not a pool boundary: it throws like any
        // outermost serial loop so cancelled requests unwind.
        const bool nested = ThreadPool::in_parallel_region();
        std::uint64_t polls = 0;
        for (Index i = begin; i < end; ++i) {
            if ((polls++ & detail::kCancelPollMask) == 0 &&
                support::cancel_requested()) {
                if (nested)
                    return;
                support::check_cancelled();
            }
            fn(i);
        }
    };

    if (n == 1 || ThreadPool::current_width() == 1) {
        run_serial();
        return;
    }
    ThreadPool& pool = ThreadPool::instance();
    LaneLease lease(pool.num_threads());
    const int lanes = lease.width();
    if (lanes == 1) {
        run_serial();
        return;
    }

    if (sched == Schedule::kStatic) {
        pool.run([&](int lane) {
            const Index block = (n + lanes - 1) / lanes;
            const Index lo = begin + block * lane;
            const Index hi = lo + block < end ? lo + block : end;
            std::uint64_t polls = 0;
            for (Index i = lo; i < hi; ++i) {
                if ((polls++ & detail::kCancelPollMask) == 0 &&
                    support::cancel_requested()) {
                    return;
                }
                fn(i);
            }
        });
    } else if (sched == Schedule::kCyclic) {
        pool.run([&](int lane) {
            std::uint64_t polls = 0;
            for (Index i = begin + lane; i < end; i += lanes) {
                if ((polls++ & detail::kCancelPollMask) == 0 &&
                    support::cancel_requested()) {
                    return;
                }
                fn(i);
            }
        });
    } else {
        if (grain <= 0) {
            grain = n / (static_cast<Index>(lanes) * 16);
            if (grain < 1)
                grain = 1;
        }
        std::atomic<Index> cursor{begin};
        pool.run([&](int) {
            for (;;) {
                if (support::cancel_requested())
                    return;
                const Index lo =
                    cursor.fetch_add(grain, std::memory_order_relaxed);
                if (lo >= end)
                    return;
                const Index hi = lo + grain < end ? lo + grain : end;
                for (Index i = lo; i < hi; ++i)
                    fn(i);
            }
        });
    }
    // Lanes drain early once cancelled; surface that to the (serial)
    // caller as an exception so kernels unwind instead of iterating on a
    // half-updated frontier forever.
    support::check_cancelled();
}

/**
 * Parallel for handing each lane a contiguous [lo, hi) block; useful when
 * the body wants to amortize per-lane state over many iterations.
 */
template <typename Index, typename Fn>
void
parallel_blocks(Index begin, Index end, Fn&& fn)
{
    if (begin >= end)
        return;
    if (ThreadPool::current_width() == 1) {
        fn(0, begin, end);
        if (!ThreadPool::in_parallel_region())
            support::check_cancelled();
        return;
    }
    ThreadPool& pool = ThreadPool::instance();
    LaneLease lease(pool.num_threads());
    const int lanes = lease.width();
    if (lanes == 1) {
        fn(0, begin, end);
        support::check_cancelled();
        return;
    }
    const Index n = end - begin;
    pool.run([&](int lane) {
        const Index block = (n + lanes - 1) / lanes;
        const Index lo = begin + block * lane;
        const Index hi = lo + block < end ? lo + block : end;
        if (lo < hi)
            fn(lane, lo, hi);
    });
    support::check_cancelled();
}

/**
 * Run @p fn once per lane with (lane, lane_count); fn pulls its own work.
 *
 * The lane count passed to @p fn is exactly the number of lanes running
 * the region.  Callers that size shared state (or a Barrier) before
 * entering must hold their own LaneLease and use its width() — an
 * ephemeral acquisition here could be granted fewer lanes than
 * ThreadPool::current_width() predicted.
 */
template <typename Fn>
void
parallel_lanes(Fn&& fn)
{
    if (ThreadPool::current_width() == 1) {
        fn(0, 1);
        return;
    }
    ThreadPool& pool = ThreadPool::instance();
    LaneLease lease(pool.num_threads());
    const int lanes = lease.width();
    pool.run([&](int lane) { fn(lane, lanes); });
}

/**
 * Deterministic parallel reduction over [begin, end).
 *
 * @param identity Identity element of @p combine.
 * @param map      Per-iteration value: map(i).
 * @param combine  Associative combiner.
 *
 * Evaluates combine over a fixed chunk grid (see file comment): the
 * result is a pure function of [begin, end), map, and combine — never of
 * the lane count — so float sums are bit-identical at any width.
 */
template <typename Index, typename T, typename Map, typename Combine>
T
parallel_reduce(Index begin, Index end, T identity, Map&& map,
                Combine&& combine)
{
    if (begin >= end)
        return identity;
    const Index n = end - begin;
    const Index chunk = detail::reduce_chunk_length(n);
    const std::size_t num_chunks =
        static_cast<std::size_t>((n + chunk - 1) / chunk);

    // Serial accumulation of one chunk, in index order.  @p bail tells it
    // to drain silently on cancellation (pool lanes and nested calls must
    // not throw across the fork boundary).
    const auto chunk_value = [&](std::size_t c, bool bail) -> T {
        T acc = identity;
        const Index lo = begin + static_cast<Index>(c) * chunk;
        const Index hi = lo + chunk < end ? lo + chunk : end;
        std::uint64_t polls = 0;
        for (Index i = lo; i < hi; ++i) {
            if ((polls++ & detail::kCancelPollMask) == 0 &&
                support::cancel_requested()) {
                if (bail)
                    break;
                support::check_cancelled();
            }
            acc = combine(acc, map(i));
        }
        return acc;
    };

    const auto run_serial = [&]() -> T {
        const bool nested = ThreadPool::in_parallel_region();
        T acc = identity;
        for (std::size_t c = 0; c < num_chunks; ++c) {
            if (nested && support::cancel_requested())
                break;
            acc = combine(acc, chunk_value(c, nested));
        }
        return acc;
    };

    if (num_chunks == 1 || ThreadPool::current_width() == 1)
        return run_serial();
    ThreadPool& pool = ThreadPool::instance();
    LaneLease lease(pool.num_threads());
    if (lease.width() == 1)
        return run_serial();

    std::vector<T> partial(num_chunks, identity);
    std::atomic<std::size_t> cursor{0};
    pool.run([&](int) {
        for (;;) {
            if (support::cancel_requested())
                return;
            const std::size_t c =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (c >= num_chunks)
                return;
            partial[c] = chunk_value(c, /*bail=*/true);
        }
    });
    support::check_cancelled();
    // Ordered combine: ascending chunk index, exactly the serial fold.
    T acc = identity;
    for (std::size_t c = 0; c < num_chunks; ++c)
        acc = combine(acc, partial[c]);
    return acc;
}

/** Number of lanes the process-wide pool runs with. */
inline int
num_threads()
{
    return ThreadPool::instance().num_threads();
}

} // namespace gm::par
