/**
 * @file
 * Data-parallel loop and reduction primitives on top of ThreadPool.
 *
 * Three schedules mirror the OpenMP trio the evaluated frameworks rely on:
 *  - kStatic:  contiguous blocks, one per lane — best locality.
 *  - kDynamic: lanes grab fixed-size chunks from an atomic cursor — best
 *              load balance for skewed work (power-law graphs).
 *  - kCyclic:  lane t handles iterations t, t+N, t+2N, ... — the NWGraph
 *              paper-described distribution for triangle counting.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "gm/par/thread_pool.hh"
#include "gm/support/watchdog.hh"

namespace gm::par
{

/** Loop iteration-assignment policy. */
enum class Schedule { kStatic, kDynamic, kCyclic };

namespace detail
{

/** Iterations between cancellation polls in contiguous loops; amortizes
 *  the relaxed atomic load to ~zero cost in kernel hot paths. */
inline constexpr std::uint64_t kCancelPollMask = 0x3FF;

} // namespace detail

/**
 * Parallel for over [begin, end).
 *
 * @param fn    Body receiving the iteration index.
 * @param sched Iteration-assignment policy.
 * @param grain Chunk size for kDynamic (ignored otherwise).
 */
template <typename Index, typename Fn>
void
parallel_for(Index begin, Index end, Fn&& fn,
             Schedule sched = Schedule::kDynamic, Index grain = 0)
{
    if (begin >= end)
        return;
    ThreadPool& pool = ThreadPool::instance();
    const Index n = end - begin;
    const int lanes = pool.num_threads();
    if (lanes == 1 || n == 1 || ThreadPool::in_parallel_region() ||
        ThreadPool::in_serial_region()) {
        // Nested (in-lane) calls must not throw across the pool boundary;
        // they bail out silently and the outermost serial level throws.
        // A SerialRegion is not a pool boundary: it throws like any
        // outermost serial loop so cancelled requests unwind.
        const bool nested = ThreadPool::in_parallel_region();
        std::uint64_t polls = 0;
        for (Index i = begin; i < end; ++i) {
            if ((polls++ & detail::kCancelPollMask) == 0 &&
                support::cancel_requested()) {
                if (nested)
                    return;
                support::check_cancelled();
            }
            fn(i);
        }
        return;
    }

    if (sched == Schedule::kStatic) {
        pool.run([&](int lane) {
            const Index block = (n + lanes - 1) / lanes;
            const Index lo = begin + block * lane;
            const Index hi = lo + block < end ? lo + block : end;
            std::uint64_t polls = 0;
            for (Index i = lo; i < hi; ++i) {
                if ((polls++ & detail::kCancelPollMask) == 0 &&
                    support::cancel_requested()) {
                    return;
                }
                fn(i);
            }
        });
    } else if (sched == Schedule::kCyclic) {
        pool.run([&](int lane) {
            std::uint64_t polls = 0;
            for (Index i = begin + lane; i < end; i += lanes) {
                if ((polls++ & detail::kCancelPollMask) == 0 &&
                    support::cancel_requested()) {
                    return;
                }
                fn(i);
            }
        });
    } else {
        if (grain <= 0) {
            grain = n / (static_cast<Index>(lanes) * 16);
            if (grain < 1)
                grain = 1;
        }
        std::atomic<Index> cursor{begin};
        pool.run([&](int) {
            for (;;) {
                if (support::cancel_requested())
                    return;
                const Index lo =
                    cursor.fetch_add(grain, std::memory_order_relaxed);
                if (lo >= end)
                    return;
                const Index hi = lo + grain < end ? lo + grain : end;
                for (Index i = lo; i < hi; ++i)
                    fn(i);
            }
        });
    }
    // Lanes drain early once cancelled; surface that to the (serial)
    // caller as an exception so kernels unwind instead of iterating on a
    // half-updated frontier forever.
    support::check_cancelled();
}

/**
 * Parallel for handing each lane a contiguous [lo, hi) block; useful when
 * the body wants to amortize per-lane state over many iterations.
 */
template <typename Index, typename Fn>
void
parallel_blocks(Index begin, Index end, Fn&& fn)
{
    if (begin >= end)
        return;
    ThreadPool& pool = ThreadPool::instance();
    const int lanes = pool.num_threads();
    if (lanes == 1 || ThreadPool::in_parallel_region() ||
        ThreadPool::in_serial_region()) {
        fn(0, begin, end);
        if (!ThreadPool::in_parallel_region())
            support::check_cancelled();
        return;
    }
    const Index n = end - begin;
    pool.run([&](int lane) {
        const Index block = (n + lanes - 1) / lanes;
        const Index lo = begin + block * lane;
        const Index hi = lo + block < end ? lo + block : end;
        if (lo < hi)
            fn(lane, lo, hi);
    });
    support::check_cancelled();
}

/**
 * Run @p fn once per lane with (lane, lane_count); fn pulls its own work.
 */
template <typename Fn>
void
parallel_lanes(Fn&& fn)
{
    ThreadPool& pool = ThreadPool::instance();
    if (ThreadPool::in_parallel_region() ||
        ThreadPool::in_serial_region()) {
        fn(0, 1);
        return;
    }
    const int lanes = pool.num_threads();
    pool.run([&](int lane) { fn(lane, lanes); });
}

/**
 * Parallel reduction over [begin, end).
 *
 * @param identity Identity element of @p combine.
 * @param map      Per-iteration value: map(i).
 * @param combine  Associative combiner.
 */
template <typename Index, typename T, typename Map, typename Combine>
T
parallel_reduce(Index begin, Index end, T identity, Map&& map,
                Combine&& combine)
{
    if (begin >= end)
        return identity;
    ThreadPool& pool = ThreadPool::instance();
    const int lanes = pool.num_threads();
    if (lanes == 1 || ThreadPool::in_parallel_region() ||
        ThreadPool::in_serial_region()) {
        const bool nested = ThreadPool::in_parallel_region();
        T acc = identity;
        std::uint64_t polls = 0;
        for (Index i = begin; i < end; ++i) {
            if ((polls++ & detail::kCancelPollMask) == 0 &&
                support::cancel_requested()) {
                if (nested)
                    break;
                support::check_cancelled();
            }
            acc = combine(acc, map(i));
        }
        return acc;
    }
    std::vector<T> partial(static_cast<std::size_t>(lanes), identity);
    const Index n = end - begin;
    pool.run([&](int lane) {
        const Index block = (n + lanes - 1) / lanes;
        const Index lo = begin + block * lane;
        const Index hi = lo + block < end ? lo + block : end;
        T acc = identity;
        std::uint64_t polls = 0;
        for (Index i = lo; i < hi; ++i) {
            if ((polls++ & detail::kCancelPollMask) == 0 &&
                support::cancel_requested()) {
                break;
            }
            acc = combine(acc, map(i));
        }
        partial[static_cast<std::size_t>(lane)] = acc;
    });
    support::check_cancelled();
    T acc = identity;
    for (const T& p : partial)
        acc = combine(acc, p);
    return acc;
}

/** Number of lanes the process-wide pool runs with. */
inline int
num_threads()
{
    return ThreadPool::instance().num_threads();
}

} // namespace gm::par
