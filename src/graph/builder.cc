#include "gm/graph/builder.hh"

#include <algorithm>
#include <numeric>

#include "gm/par/atomics.hh"
#include "gm/par/parallel_for.hh"
#include "gm/support/fault_injector.hh"
#include "gm/support/rng.hh"

namespace gm::graph
{

namespace
{

/** One direction's worth of CSR arrays. */
template <typename DestT>
struct CSRHalf
{
    std::vector<eid_t> offsets;
    std::vector<DestT> destinations;
};

template <typename EdgeT>
vid_t
edge_source(const EdgeT& e)
{
    return e.u;
}

vid_t
edge_target(const Edge& e)
{
    return e.v;
}

vid_t
edge_target(const WEdge& e)
{
    return e.v;
}

vid_t
dest_of(const Edge& e, bool forward)
{
    return forward ? e.v : e.u;
}

WNode
dest_of(const WEdge& e, bool forward)
{
    return forward ? WNode{e.v, e.w} : WNode{e.u, e.w};
}

/**
 * Build one CSR direction from an edge list.
 *
 * @param forward   true: u -> v entries keyed by u; false: keyed by v
 *                  (transposed / in-edge direction).
 * @param both_ways true: store each edge in both directions (symmetrize).
 */
template <typename EdgeT, typename DestT>
CSRHalf<DestT>
build_half(const std::vector<EdgeT>& edges, vid_t n, bool forward,
           bool both_ways, const BuildOptions& opts)
{
    CSRHalf<DestT> half;
    std::vector<eid_t> degree(static_cast<std::size_t>(n) + 1, 0);

    auto keeps = [&](const EdgeT& e) {
        if (opts.remove_self_loops && edge_source(e) == edge_target(e))
            return false;
        return true;
    };

    // Count.
    par::parallel_for<std::size_t>(0, edges.size(), [&](std::size_t i) {
        const EdgeT& e = edges[i];
        if (!keeps(e))
            return;
        const vid_t key = forward ? edge_source(e) : edge_target(e);
        par::fetch_add<eid_t>(degree[key], 1);
        if (both_ways) {
            const vid_t rkey = forward ? edge_target(e) : edge_source(e);
            par::fetch_add<eid_t>(degree[rkey], 1);
        }
    });

    // Prefix sum.
    half.offsets.resize(static_cast<std::size_t>(n) + 1);
    half.offsets[0] = 0;
    std::partial_sum(degree.begin(), degree.end() - 1, half.offsets.begin() + 1);
    half.destinations.resize(static_cast<std::size_t>(half.offsets[n]));

    // Scatter using a per-vertex atomic cursor.
    std::vector<eid_t> cursor(half.offsets.begin(), half.offsets.end() - 1);
    par::parallel_for<std::size_t>(0, edges.size(), [&](std::size_t i) {
        const EdgeT& e = edges[i];
        if (!keeps(e))
            return;
        const vid_t key = forward ? edge_source(e) : edge_target(e);
        const eid_t slot = par::fetch_add<eid_t>(cursor[key], 1);
        half.destinations[slot] = dest_of(e, forward);
        if (both_ways) {
            const vid_t rkey = forward ? edge_target(e) : edge_source(e);
            const eid_t rslot = par::fetch_add<eid_t>(cursor[rkey], 1);
            half.destinations[rslot] = dest_of(e, !forward);
        }
    });

    if (!opts.sort_neighbors)
        return half;

    // Sort each adjacency list; optionally dedup (by target vertex).
    std::vector<eid_t> kept(static_cast<std::size_t>(n) + 1, 0);
    par::parallel_for<vid_t>(0, n, [&](vid_t v) {
        DestT* lo = half.destinations.data() + half.offsets[v];
        DestT* hi = half.destinations.data() + half.offsets[v + 1];
        std::sort(lo, hi, [](const DestT& a, const DestT& b) {
            return dest_less(a, b);
        });
        if (opts.dedup) {
            DestT* out = std::unique(lo, hi, [](const DestT& a, const DestT& b) {
                return target(a) == target(b);
            });
            kept[v] = out - lo;
        } else {
            kept[v] = hi - lo;
        }
    });

    if (!opts.dedup)
        return half;

    // Squeeze out the holes dedup left behind.
    std::vector<eid_t> new_offsets(static_cast<std::size_t>(n) + 1);
    new_offsets[0] = 0;
    std::partial_sum(kept.begin(), kept.end() - 1, new_offsets.begin() + 1);
    std::vector<DestT> packed(static_cast<std::size_t>(new_offsets[n]));
    par::parallel_for<vid_t>(0, n, [&](vid_t v) {
        std::copy(half.destinations.begin() + half.offsets[v],
                  half.destinations.begin() + half.offsets[v] + kept[v],
                  packed.begin() + new_offsets[v]);
    });
    half.offsets = std::move(new_offsets);
    half.destinations = std::move(packed);
    return half;
}

template <typename EdgeT, typename DestT>
CSRGraphT<DestT>
build_any(const std::vector<EdgeT>& edges, vid_t n, bool directed,
          BuildOptions opts)
{
    // Fault-injection site for graph building (serial entry point).
    support::FaultInjector::global().at("graph.build");
    if (!directed)
        opts.symmetrize = true;
    const bool both_ways = opts.symmetrize;
    const bool result_directed = directed && !opts.symmetrize;

    CSRHalf<DestT> out = build_half<EdgeT, DestT>(edges, n, /*forward=*/true,
                                                  both_ways, opts);
    if (!result_directed) {
        return CSRGraphT<DestT>(n, false, std::move(out.offsets),
                                std::move(out.destinations));
    }
    CSRHalf<DestT> in = build_half<EdgeT, DestT>(edges, n, /*forward=*/false,
                                                 both_ways, opts);
    return CSRGraphT<DestT>(n, true, std::move(out.offsets),
                            std::move(out.destinations),
                            std::move(in.offsets),
                            std::move(in.destinations));
}

} // namespace

weight_t
pair_weight(vid_t u, vid_t v, std::uint64_t seed)
{
    const std::uint64_t a = static_cast<std::uint64_t>(std::min(u, v));
    const std::uint64_t b = static_cast<std::uint64_t>(std::max(u, v));
    SplitMix64 mix(seed ^ (a * 0x9e3779b97f4a7c15ULL + b + 0x100));
    return static_cast<weight_t>(mix.next() % 255 + 1);
}

CSRGraph
build_graph(const EdgeList& edges, vid_t num_vertices, bool directed,
            const BuildOptions& opts)
{
    return build_any<Edge, vid_t>(edges, num_vertices, directed, opts);
}

WCSRGraph
build_wgraph(const WEdgeList& edges, vid_t num_vertices, bool directed,
             const BuildOptions& opts)
{
    return build_any<WEdge, WNode>(edges, num_vertices, directed, opts);
}

namespace
{

/** Endpoint-range validation shared by the try_build_* entry points. */
template <typename EdgeT>
support::Status
validate_edges(const std::vector<EdgeT>& edges, vid_t n)
{
    if (n < 0) {
        return support::Status(support::StatusCode::kInvalidInput,
                               "negative vertex count");
    }
    for (std::size_t i = 0; i < edges.size(); ++i) {
        const EdgeT& e = edges[i];
        if (e.u < 0 || e.u >= n || e.v < 0 || e.v >= n) {
            return support::Status(
                support::StatusCode::kInvalidInput,
                "edge " + std::to_string(i) + " endpoint out of [0, " +
                    std::to_string(n) + ")");
        }
    }
    return support::Status::ok();
}

} // namespace

support::StatusOr<CSRGraph>
try_build_graph(const EdgeList& edges, vid_t num_vertices, bool directed,
                const BuildOptions& opts)
{
    const support::Status status = validate_edges(edges, num_vertices);
    if (!status.is_ok())
        return status;
    try {
        return build_graph(edges, num_vertices, directed, opts);
    } catch (...) {
        return support::current_exception_status();
    }
}

support::StatusOr<WCSRGraph>
try_build_wgraph(const WEdgeList& edges, vid_t num_vertices, bool directed,
                 const BuildOptions& opts)
{
    const support::Status status = validate_edges(edges, num_vertices);
    if (!status.is_ok())
        return status;
    try {
        return build_wgraph(edges, num_vertices, directed, opts);
    } catch (...) {
        return support::current_exception_status();
    }
}

WCSRGraph
add_weights(const CSRGraph& graph, std::uint64_t seed)
{
    const vid_t n = graph.num_vertices();
    auto weight_dests = [&](const std::vector<eid_t>& offsets,
                            const std::vector<vid_t>& dests) {
        std::vector<WNode> out(dests.size());
        par::parallel_for<vid_t>(0, n, [&](vid_t v) {
            for (eid_t e = offsets[v]; e < offsets[v + 1]; ++e)
                out[e] = WNode{dests[e], pair_weight(v, dests[e], seed)};
        });
        return out;
    };

    std::vector<WNode> out_nbr =
        weight_dests(graph.out_offsets(), graph.out_destinations());
    if (!graph.is_directed()) {
        return WCSRGraph(n, false, graph.out_offsets(), std::move(out_nbr));
    }
    std::vector<WNode> in_nbr;
    {
        // For in-edges the stored source is the offset owner's neighbor.
        const auto& offsets = graph.in_offsets();
        const auto& dests = graph.in_destinations();
        in_nbr.resize(dests.size());
        par::parallel_for<vid_t>(0, n, [&](vid_t v) {
            for (eid_t e = offsets[v]; e < offsets[v + 1]; ++e)
                in_nbr[e] = WNode{dests[e], pair_weight(dests[e], v, seed)};
        });
    }
    return WCSRGraph(n, true, graph.out_offsets(), std::move(out_nbr),
                     graph.in_offsets(), std::move(in_nbr));
}

CSRGraph
transpose(const CSRGraph& graph)
{
    if (!graph.is_directed())
        return graph;
    return CSRGraph(graph.num_vertices(), true, graph.in_offsets(),
                    graph.in_destinations(), graph.out_offsets(),
                    graph.out_destinations());
}

CSRGraph
relabel_by_degree(const CSRGraph& graph, std::vector<vid_t>* new_to_old)
{
    const vid_t n = graph.num_vertices();
    std::vector<vid_t> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](vid_t a, vid_t b) {
        const eid_t da = graph.out_degree(a);
        const eid_t db = graph.out_degree(b);
        return da > db || (da == db && a < b);
    });
    std::vector<vid_t> old_to_new(static_cast<std::size_t>(n));
    for (vid_t i = 0; i < n; ++i)
        old_to_new[order[i]] = i;

    EdgeList edges;
    edges.reserve(static_cast<std::size_t>(graph.num_edges_directed()));
    for (vid_t v = 0; v < n; ++v)
        for (vid_t u : graph.out_neigh(v))
            edges.push_back({old_to_new[v], old_to_new[u]});

    if (new_to_old != nullptr)
        *new_to_old = order;
    // The edge list already contains both directions for undirected inputs,
    // so rebuild as "directed" to avoid doubling, then wrap as undirected.
    if (!graph.is_directed()) {
        BuildOptions opts;
        CSRGraph rebuilt = build_graph(edges, n, true, opts);
        return CSRGraph(n, false,
                        rebuilt.out_offsets(), rebuilt.out_destinations());
    }
    return build_graph(edges, n, true);
}

} // namespace gm::graph
