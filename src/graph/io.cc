#include "gm/graph/io.hh"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <limits>

#include "gm/support/hash.hh"
#include "gm/support/log.hh"

namespace gm::graph
{

namespace
{

using support::StatusCode;

/** v2 magic ("GMGRH2"); v1 files (no version/checksum) used 0x474d475248. */
constexpr std::uint64_t kMagic = 0x32484752474d47ULL;
constexpr std::uint64_t kLegacyMagic = 0x474d475248ULL;
constexpr std::uint32_t kVersion = 2;

/** The .gmg trailing checksum is a plain FNV-1a digest. */
class Checksum
{
  public:
    void update(const void* data, std::size_t size)
    {
        fnv_.update(data, size);
    }

    std::uint64_t value() const { return fnv_.digest(); }

  private:
    support::Fnv1a fnv_;
};

template <typename T>
void
write_vec(std::ofstream& out, const std::vector<T>& v, Checksum& crc)
{
    const std::uint64_t size = v.size();
    out.write(reinterpret_cast<const char*>(&size), sizeof(size));
    out.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(size * sizeof(T)));
    crc.update(&size, sizeof(size));
    crc.update(v.data(), size * sizeof(T));
}

/** Read a length-prefixed array, bounding the allocation by the bytes
 *  actually left in the file so a corrupt size field cannot OOM. */
template <typename T>
Status
read_vec(std::ifstream& in, std::uint64_t bytes_left, const std::string& path,
         Checksum& crc, std::vector<T>* out)
{
    std::uint64_t size = 0;
    in.read(reinterpret_cast<char*>(&size), sizeof(size));
    if (!in) {
        return Status(StatusCode::kCorruptData,
                      "truncated array header in " + path);
    }
    if (bytes_left < sizeof(size) ||
        size > (bytes_left - sizeof(size)) / sizeof(T)) {
        return Status(StatusCode::kCorruptData,
                      "array size " + std::to_string(size) +
                          " exceeds remaining file bytes in " + path);
    }
    out->resize(size);
    in.read(reinterpret_cast<char*>(out->data()),
            static_cast<std::streamsize>(size * sizeof(T)));
    if (!in) {
        return Status(StatusCode::kCorruptData,
                      "truncated array payload in " + path);
    }
    crc.update(&size, sizeof(size));
    crc.update(out->data(), size * sizeof(T));
    return Status::ok();
}

/** Validate one CSR direction: offsets monotonic from 0 to |dests|,
 *  destinations in [0, n). */
Status
validate_csr(vid_t n, const std::vector<eid_t>& offsets,
             const std::vector<vid_t>& dests, const std::string& path)
{
    if (offsets.size() != static_cast<std::size_t>(n) + 1 ||
        offsets.front() != 0 ||
        offsets.back() != static_cast<eid_t>(dests.size())) {
        return Status(StatusCode::kCorruptData,
                      "CSR offset array inconsistent in " + path);
    }
    for (std::size_t i = 1; i < offsets.size(); ++i) {
        if (offsets[i] < offsets[i - 1]) {
            return Status(StatusCode::kCorruptData,
                          "CSR offsets not monotonic in " + path);
        }
    }
    for (vid_t d : dests) {
        if (d < 0 || d >= n) {
            return Status(StatusCode::kCorruptData,
                          "CSR destination out of range in " + path);
        }
    }
    return Status::ok();
}

/**
 * Shared line-oriented edge-list parser.
 *
 * @param fields  2 for "u v", 3 for "u v w".
 * @param emit    emit(u, v, w) for each parsed edge (w is 0 when 2 fields).
 */
template <typename Emit>
Status
parse_edge_lines(const std::string& path, int fields, Emit emit)
{
    std::ifstream in(path);
    if (!in) {
        return Status(StatusCode::kInvalidInput,
                      "cannot open edge list: " + path);
    }
    std::string line;
    for (std::int64_t line_no = 1; std::getline(in, line); ++line_no) {
        const auto bad = [&](const std::string& what) {
            return Status(StatusCode::kInvalidInput,
                          path + ":" + std::to_string(line_no) + ": " +
                              what);
        };
        const char* cursor = line.c_str();
        while (*cursor == ' ' || *cursor == '\t')
            ++cursor;
        if (*cursor == '\0' || *cursor == '#')
            continue; // blank line or comment

        long long id[2] = {0, 0};
        for (int f = 0; f < 2; ++f) {
            char* end = nullptr;
            errno = 0;
            id[f] = std::strtoll(cursor, &end, 10);
            if (end == cursor)
                return bad("expected a vertex id");
            if (errno == ERANGE ||
                id[f] > std::numeric_limits<vid_t>::max()) {
                return bad("vertex id overflows 32 bits");
            }
            if (id[f] < 0)
                return bad("negative vertex id");
            cursor = end;
        }
        double weight = 0;
        if (fields == 3) {
            char* end = nullptr;
            errno = 0;
            weight = std::strtod(cursor, &end);
            if (end == cursor)
                return bad("expected an edge weight");
            if (std::isnan(weight))
                return bad("NaN edge weight");
            if (weight < 0)
                return bad("negative edge weight");
            if (errno == ERANGE ||
                weight > static_cast<double>(
                             std::numeric_limits<weight_t>::max())) {
                return bad("edge weight overflows");
            }
            cursor = end;
        }
        while (*cursor == ' ' || *cursor == '\t')
            ++cursor;
        if (*cursor != '\0' && *cursor != '#')
            return bad(std::string("trailing garbage: '") + cursor + "'");
        emit(static_cast<vid_t>(id[0]), static_cast<vid_t>(id[1]),
             static_cast<weight_t>(weight));
    }
    return Status::ok();
}

} // namespace

StatusOr<EdgeList>
read_edge_list(const std::string& path, vid_t* num_vertices)
{
    EdgeList edges;
    vid_t max_id = -1;
    const Status status =
        parse_edge_lines(path, 2, [&](vid_t u, vid_t v, weight_t) {
            edges.push_back({u, v});
            max_id = std::max({max_id, u, v});
        });
    if (!status.is_ok())
        return status;
    if (num_vertices != nullptr)
        *num_vertices = max_id + 1;
    return edges;
}

StatusOr<WEdgeList>
read_weighted_edge_list(const std::string& path, vid_t* num_vertices)
{
    WEdgeList edges;
    vid_t max_id = -1;
    const Status status =
        parse_edge_lines(path, 3, [&](vid_t u, vid_t v, weight_t w) {
            edges.push_back({u, v, w});
            max_id = std::max({max_id, u, v});
        });
    if (!status.is_ok())
        return status;
    if (num_vertices != nullptr)
        *num_vertices = max_id + 1;
    return edges;
}

Status
write_edge_list(const CSRGraph& graph, const std::string& path)
{
    std::ofstream out(path);
    if (!out) {
        return Status(StatusCode::kInvalidInput,
                      "cannot write edge list: " + path);
    }
    for (vid_t v = 0; v < graph.num_vertices(); ++v)
        for (vid_t u : graph.out_neigh(v))
            out << v << " " << u << "\n";
    out.flush();
    if (!out) {
        return Status(StatusCode::kInvalidInput,
                      "write failed for edge list: " + path);
    }
    return Status::ok();
}

Status
save_binary(const CSRGraph& graph, const std::string& path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        return Status(StatusCode::kInvalidInput,
                      "cannot write binary graph: " + path);
    }
    Checksum crc;
    out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
    out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
    const std::int64_t n = graph.num_vertices();
    const std::int8_t directed = graph.is_directed() ? 1 : 0;
    out.write(reinterpret_cast<const char*>(&n), sizeof(n));
    out.write(reinterpret_cast<const char*>(&directed), sizeof(directed));
    crc.update(&n, sizeof(n));
    crc.update(&directed, sizeof(directed));
    write_vec(out, graph.out_offsets(), crc);
    write_vec(out, graph.out_destinations(), crc);
    if (graph.is_directed()) {
        write_vec(out, graph.in_offsets(), crc);
        write_vec(out, graph.in_destinations(), crc);
    }
    const std::uint64_t checksum = crc.value();
    out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
    out.flush();
    if (!out) {
        return Status(StatusCode::kInvalidInput,
                      "write failed for binary graph: " + path);
    }
    return Status::ok();
}

StatusOr<CSRGraph>
load_binary(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return Status(StatusCode::kInvalidInput,
                      "cannot open binary graph: " + path);
    }
    in.seekg(0, std::ios::end);
    const std::int64_t file_size = static_cast<std::int64_t>(in.tellg());
    in.seekg(0, std::ios::beg);

    std::uint64_t magic = 0;
    std::uint32_t version = 0;
    in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
    in.read(reinterpret_cast<char*>(&version), sizeof(version));
    if (!in || magic != kMagic) {
        if (magic == kLegacyMagic) {
            return Status(StatusCode::kCorruptData,
                          "legacy v1 .gmg file (no checksum): " + path +
                              "; regenerate with tools/converter");
        }
        return Status(StatusCode::kCorruptData,
                      "bad magic in binary graph: " + path);
    }
    if (version != kVersion) {
        return Status(StatusCode::kCorruptData,
                      "unsupported .gmg version " + std::to_string(version) +
                          " in " + path);
    }

    Checksum crc;
    std::int64_t n = 0;
    std::int8_t directed = 0;
    in.read(reinterpret_cast<char*>(&n), sizeof(n));
    in.read(reinterpret_cast<char*>(&directed), sizeof(directed));
    if (!in) {
        return Status(StatusCode::kCorruptData,
                      "truncated header in " + path);
    }
    if (n < 0 || n > std::numeric_limits<vid_t>::max()) {
        return Status(StatusCode::kCorruptData,
                      "vertex count out of range in " + path);
    }
    if (directed != 0 && directed != 1) {
        return Status(StatusCode::kCorruptData,
                      "bad directedness flag in " + path);
    }
    crc.update(&n, sizeof(n));
    crc.update(&directed, sizeof(directed));

    auto bytes_left = [&]() -> std::uint64_t {
        const std::int64_t pos = static_cast<std::int64_t>(in.tellg());
        // Reserve the trailing checksum's bytes: payload may not use them.
        const std::int64_t left =
            file_size - pos - static_cast<std::int64_t>(sizeof(std::uint64_t));
        return left > 0 ? static_cast<std::uint64_t>(left) : 0;
    };

    std::vector<eid_t> out_off;
    std::vector<vid_t> out_nbr;
    std::vector<eid_t> in_off;
    std::vector<vid_t> in_nbr;
    Status status = read_vec(in, bytes_left(), path, crc, &out_off);
    if (status.is_ok())
        status = read_vec(in, bytes_left(), path, crc, &out_nbr);
    if (status.is_ok() && directed != 0) {
        status = read_vec(in, bytes_left(), path, crc, &in_off);
        if (status.is_ok())
            status = read_vec(in, bytes_left(), path, crc, &in_nbr);
    }
    if (!status.is_ok())
        return status;

    std::uint64_t stored_checksum = 0;
    in.read(reinterpret_cast<char*>(&stored_checksum),
            sizeof(stored_checksum));
    if (!in) {
        return Status(StatusCode::kCorruptData,
                      "missing checksum in " + path);
    }
    if (stored_checksum != crc.value()) {
        return Status(StatusCode::kCorruptData,
                      "checksum mismatch in " + path);
    }

    const vid_t nv = static_cast<vid_t>(n);
    status = validate_csr(nv, out_off, out_nbr, path);
    if (status.is_ok() && directed != 0)
        status = validate_csr(nv, in_off, in_nbr, path);
    if (!status.is_ok())
        return status;

    if (directed != 0) {
        return CSRGraph(nv, true, std::move(out_off), std::move(out_nbr),
                        std::move(in_off), std::move(in_nbr));
    }
    return CSRGraph(nv, false, std::move(out_off), std::move(out_nbr));
}

} // namespace gm::graph
