#include "gm/graph/io.hh"

#include <algorithm>
#include <cstdint>
#include <fstream>

#include "gm/support/log.hh"

namespace gm::graph
{

namespace
{

constexpr std::uint64_t kMagic = 0x474d475248UL; // "GMGRH"

template <typename T>
void
write_vec(std::ofstream& out, const std::vector<T>& v)
{
    const std::uint64_t size = v.size();
    out.write(reinterpret_cast<const char*>(&size), sizeof(size));
    out.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(size * sizeof(T)));
}

template <typename T>
std::vector<T>
read_vec(std::ifstream& in)
{
    std::uint64_t size = 0;
    in.read(reinterpret_cast<char*>(&size), sizeof(size));
    std::vector<T> v(size);
    in.read(reinterpret_cast<char*>(v.data()),
            static_cast<std::streamsize>(size * sizeof(T)));
    return v;
}

} // namespace

EdgeList
read_edge_list(const std::string& path, vid_t* num_vertices)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open edge list: " + path);
    EdgeList edges;
    vid_t max_id = -1;
    long long u = 0;
    long long v = 0;
    while (in >> u >> v) {
        edges.push_back({static_cast<vid_t>(u), static_cast<vid_t>(v)});
        max_id = std::max({max_id, static_cast<vid_t>(u),
                           static_cast<vid_t>(v)});
    }
    if (num_vertices != nullptr)
        *num_vertices = max_id + 1;
    return edges;
}

WEdgeList
read_weighted_edge_list(const std::string& path, vid_t* num_vertices)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open weighted edge list: " + path);
    WEdgeList edges;
    vid_t max_id = -1;
    long long u = 0;
    long long v = 0;
    long long w = 0;
    while (in >> u >> v >> w) {
        edges.push_back({static_cast<vid_t>(u), static_cast<vid_t>(v),
                         static_cast<weight_t>(w)});
        max_id = std::max({max_id, static_cast<vid_t>(u),
                           static_cast<vid_t>(v)});
    }
    if (num_vertices != nullptr)
        *num_vertices = max_id + 1;
    return edges;
}

void
write_edge_list(const CSRGraph& graph, const std::string& path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write edge list: " + path);
    for (vid_t v = 0; v < graph.num_vertices(); ++v)
        for (vid_t u : graph.out_neigh(v))
            out << v << " " << u << "\n";
}

void
save_binary(const CSRGraph& graph, const std::string& path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot write binary graph: " + path);
    out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
    const std::int64_t n = graph.num_vertices();
    const std::int8_t directed = graph.is_directed() ? 1 : 0;
    out.write(reinterpret_cast<const char*>(&n), sizeof(n));
    out.write(reinterpret_cast<const char*>(&directed), sizeof(directed));
    write_vec(out, graph.out_offsets());
    write_vec(out, graph.out_destinations());
    if (graph.is_directed()) {
        write_vec(out, graph.in_offsets());
        write_vec(out, graph.in_destinations());
    }
}

CSRGraph
load_binary(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open binary graph: " + path);
    std::uint64_t magic = 0;
    in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
    if (magic != kMagic)
        fatal("bad magic in binary graph: " + path);
    std::int64_t n = 0;
    std::int8_t directed = 0;
    in.read(reinterpret_cast<char*>(&n), sizeof(n));
    in.read(reinterpret_cast<char*>(&directed), sizeof(directed));
    auto out_off = read_vec<eid_t>(in);
    auto out_nbr = read_vec<vid_t>(in);
    if (directed != 0) {
        auto in_off = read_vec<eid_t>(in);
        auto in_nbr = read_vec<vid_t>(in);
        return CSRGraph(static_cast<vid_t>(n), true, std::move(out_off),
                        std::move(out_nbr), std::move(in_off),
                        std::move(in_nbr));
    }
    return CSRGraph(static_cast<vid_t>(n), false, std::move(out_off),
                    std::move(out_nbr));
}

} // namespace gm::graph
