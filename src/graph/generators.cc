#include "gm/graph/generators.hh"

#include <algorithm>

#include "gm/graph/builder.hh"
#include "gm/par/parallel_for.hh"
#include "gm/support/rng.hh"

namespace gm::graph
{

namespace
{

/** RNG stream chunk: the edge list is carved into fixed-length chunks,
 *  each filled from its own seeded stream.  The grid depends only on the
 *  list length, never on the lane count, so generated graphs are
 *  bit-identical at any GM_THREADS (chunks are merely *scheduled* across
 *  whatever lanes are available). */
constexpr std::size_t kGenChunk = 1024;

/** Fill @p edges in parallel with per-chunk seeded RNG streams. */
template <typename Fn>
void
fill_edges_parallel(EdgeList& edges, std::uint64_t seed, Fn&& make_edge)
{
    const std::size_t n = edges.size();
    const std::size_t num_chunks = (n + kGenChunk - 1) / kGenChunk;
    par::parallel_for<std::size_t>(0, num_chunks, [&](std::size_t c) {
        const std::size_t lo = c * kGenChunk;
        const std::size_t hi = std::min(lo + kGenChunk, n);
        Xoshiro256 rng(seed ^ (0xabcdef12345ULL + c * 0x9e3779b9ULL));
        for (std::size_t i = lo; i < hi; ++i)
            edges[i] = make_edge(rng);
    });
}

} // namespace

CSRGraph
make_uniform(int scale, int degree, std::uint64_t seed)
{
    const vid_t n = vid_t{1} << scale;
    const eid_t m = static_cast<eid_t>(n) * degree / 2;
    EdgeList edges(static_cast<std::size_t>(m));
    fill_edges_parallel(edges, seed, [&](Xoshiro256& rng) {
        return Edge{static_cast<vid_t>(rng.next_bounded(n)),
                    static_cast<vid_t>(rng.next_bounded(n))};
    });
    return build_graph(edges, n, /*directed=*/false);
}

EdgeList
rmat_edges(int scale, eid_t num_edges, double a, double b, double c,
           std::uint64_t seed)
{
    EdgeList edges(static_cast<std::size_t>(num_edges));
    fill_edges_parallel(edges, seed, [&](Xoshiro256& rng) {
        vid_t u = 0;
        vid_t v = 0;
        for (int bit = scale - 1; bit >= 0; --bit) {
            const double r = rng.next_double();
            if (r < a) {
                // upper-left: nothing to add
            } else if (r < a + b) {
                v |= vid_t{1} << bit;
            } else if (r < a + b + c) {
                u |= vid_t{1} << bit;
            } else {
                u |= vid_t{1} << bit;
                v |= vid_t{1} << bit;
            }
        }
        return Edge{u, v};
    });
    return edges;
}

CSRGraph
make_kronecker(int scale, int degree, std::uint64_t seed)
{
    const vid_t n = vid_t{1} << scale;
    const eid_t m = static_cast<eid_t>(n) * degree / 2;
    EdgeList edges = rmat_edges(scale, m, 0.57, 0.19, 0.19, seed);
    return build_graph(edges, n, /*directed=*/false);
}

CSRGraph
make_twitter_like(int scale, int degree, std::uint64_t seed)
{
    const vid_t n = vid_t{1} << scale;
    const eid_t m = static_cast<eid_t>(n) * degree;
    // Heavier skew than Graph500 Kronecker: follower counts are extremely
    // top-heavy, so push more mass into the first row/column of the RMAT
    // recursion.
    EdgeList edges = rmat_edges(scale, m, 0.50, 0.23, 0.19, seed);
    return build_graph(edges, n, /*directed=*/true);
}

CSRGraph
make_web_like(int scale, int degree, std::uint64_t seed)
{
    // Copying model (Kumar et al. style): each new page either copies the
    // out-links of a prototype page or links uniformly at random.  A small
    // fraction of pages form chains, which stretches the effective diameter
    // the way deep site hierarchies do in real crawls.
    const vid_t n = vid_t{1} << scale;
    EdgeList edges;
    edges.reserve(static_cast<std::size_t>(n) * degree);
    std::vector<eid_t> first_edge(static_cast<std::size_t>(n) + 1, 0);
    Xoshiro256 rng(seed);

    constexpr double kCopyProb = 0.7;
    constexpr double kChainProb = 0.02;
    const vid_t warmup = std::min<vid_t>(n, 8);

    for (vid_t v = 0; v < n; ++v) {
        first_edge[v] = static_cast<eid_t>(edges.size());
        if (v < warmup) {
            for (vid_t u = 0; u < v; ++u)
                edges.push_back({v, u});
            continue;
        }
        if (rng.next_double() < kChainProb) {
            edges.push_back({v, v - 1});
            continue;
        }
        const vid_t proto = static_cast<vid_t>(rng.next_bounded(v));
        const eid_t proto_lo = first_edge[proto];
        const eid_t proto_hi = first_edge[proto + 1];
        const eid_t proto_deg = proto_hi - proto_lo;
        for (int k = 0; k < degree; ++k) {
            if (proto_deg > 0 && rng.next_double() < kCopyProb) {
                const eid_t pick =
                    proto_lo + static_cast<eid_t>(rng.next_bounded(
                                   static_cast<std::uint64_t>(proto_deg)));
                edges.push_back({v, edges[pick].v});
            } else {
                edges.push_back({v, static_cast<vid_t>(rng.next_bounded(v))});
            }
        }
    }
    first_edge[n] = static_cast<eid_t>(edges.size());
    return build_graph(edges, n, /*directed=*/true);
}

CSRGraph
make_road_like(vid_t rows, vid_t cols, std::uint64_t seed)
{
    const vid_t n = rows * cols;
    EdgeList edges;
    edges.reserve(static_cast<std::size_t>(n) * 3);
    Xoshiro256 rng(seed);

    constexpr double kSegmentProb = 0.97; // road segment exists
    constexpr double kOneWayProb = 0.05;  // segment is one-way

    auto id = [cols](vid_t r, vid_t c) { return r * cols + c; };
    auto add_segment = [&](vid_t x, vid_t y) {
        if (rng.next_double() >= kSegmentProb)
            return;
        if (rng.next_double() < kOneWayProb) {
            if (rng.next_double() < 0.5)
                edges.push_back({x, y});
            else
                edges.push_back({y, x});
        } else {
            edges.push_back({x, y});
            edges.push_back({y, x});
        }
    };

    for (vid_t r = 0; r < rows; ++r) {
        for (vid_t c = 0; c < cols; ++c) {
            if (c + 1 < cols)
                add_segment(id(r, c), id(r, c + 1));
            if (r + 1 < rows)
                add_segment(id(r, c), id(r + 1, c));
        }
    }
    return build_graph(edges, n, /*directed=*/true);
}

} // namespace gm::graph
