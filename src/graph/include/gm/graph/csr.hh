/**
 * @file
 * Compressed-sparse-row graph, the shared in-memory representation.
 *
 * Mirrors the GAP benchmark's CSRGraph: out-edges always present; in-edges
 * present for directed graphs (the GAP rules allow storing both forms, and
 * transposition is not timed).  Undirected graphs store each edge in both
 * directions in the out-arrays and alias the in-arrays to them.
 *
 * The destination type is a template parameter so the same structure serves
 * unweighted graphs (DestT = vid_t) and weighted graphs (DestT = WNode).
 */
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "gm/support/log.hh"
#include "gm/support/types.hh"

namespace gm::graph
{

/** Weighted CSR destination: target vertex plus edge weight. */
struct WNode
{
    vid_t v;
    weight_t w;

    friend bool operator==(const WNode&, const WNode&) = default;
};

/** Target vertex of a CSR destination entry. */
inline vid_t target(vid_t dest) { return dest; }
/** @copydoc target(vid_t) */
inline vid_t target(const WNode& dest) { return dest.v; }

/** Weight of a CSR destination entry (1 for unweighted graphs). */
inline weight_t edge_weight(vid_t) { return 1; }
/** @copydoc edge_weight(vid_t) */
inline weight_t edge_weight(const WNode& dest) { return dest.w; }

/** Ordering by target vertex, used to sort adjacency lists. */
inline bool dest_less(vid_t a, vid_t b) { return a < b; }
/** @copydoc dest_less(vid_t,vid_t) */
inline bool
dest_less(const WNode& a, const WNode& b)
{
    return a.v < b.v || (a.v == b.v && a.w < b.w);
}

/** CSR graph over destination type @p DestT. */
template <typename DestT>
class CSRGraphT
{
  public:
    using dest_type = DestT;

    CSRGraphT() = default;

    /**
     * Assemble from prebuilt arrays.  For undirected graphs pass empty
     * in-arrays; accessors then alias the out-arrays.
     */
    CSRGraphT(vid_t num_vertices, bool directed, std::vector<eid_t> out_off,
              std::vector<DestT> out_nbr, std::vector<eid_t> in_off = {},
              std::vector<DestT> in_nbr = {})
        : num_vertices_(num_vertices),
          directed_(directed),
          out_off_(std::move(out_off)),
          out_nbr_(std::move(out_nbr)),
          in_off_(std::move(in_off)),
          in_nbr_(std::move(in_nbr))
    {
        GM_ASSERT(out_off_.size() ==
                      static_cast<std::size_t>(num_vertices_) + 1,
                  "offset array size mismatch");
        GM_ASSERT(directed_ || in_off_.empty(),
                  "undirected graphs alias in-edges to out-edges");
    }

    /** Number of vertices. */
    vid_t num_vertices() const { return num_vertices_; }

    /** Stored (directed) edge count. */
    eid_t num_edges_directed() const
    {
        return static_cast<eid_t>(out_nbr_.size());
    }

    /** Logical edge count: undirected edges counted once. */
    eid_t
    num_edges() const
    {
        return directed_ ? num_edges_directed() : num_edges_directed() / 2;
    }

    /** True when the graph is directed. */
    bool is_directed() const { return directed_; }

    /** Out-degree of @p v. */
    eid_t out_degree(vid_t v) const { return out_off_[v + 1] - out_off_[v]; }

    /** In-degree of @p v (== out-degree for undirected graphs). */
    eid_t
    in_degree(vid_t v) const
    {
        if (!directed_)
            return out_degree(v);
        return in_off_[v + 1] - in_off_[v];
    }

    /** Out-neighborhood of @p v. */
    std::span<const DestT>
    out_neigh(vid_t v) const
    {
        return {out_nbr_.data() + out_off_[v],
                static_cast<std::size_t>(out_degree(v))};
    }

    /** In-neighborhood of @p v (aliases out_neigh for undirected graphs). */
    std::span<const DestT>
    in_neigh(vid_t v) const
    {
        if (!directed_)
            return out_neigh(v);
        return {in_nbr_.data() + in_off_[v],
                static_cast<std::size_t>(in_degree(v))};
    }

    /** Raw out-offset array (size num_vertices()+1). */
    const std::vector<eid_t>& out_offsets() const { return out_off_; }
    /** Raw out-destination array. */
    const std::vector<DestT>& out_destinations() const { return out_nbr_; }
    /** Raw in-offset array (empty for undirected graphs). */
    const std::vector<eid_t>&
    in_offsets() const
    {
        return directed_ ? in_off_ : out_off_;
    }
    /** Raw in-destination array (aliases out for undirected graphs). */
    const std::vector<DestT>&
    in_destinations() const
    {
        return directed_ ? in_nbr_ : out_nbr_;
    }

    /** Heap bytes owned by this graph's CSR arrays (undirected graphs
     *  store no in-arrays, so aliased accessors are not double-counted). */
    std::size_t
    bytes_resident() const
    {
        return (out_off_.size() + in_off_.size()) * sizeof(eid_t) +
               (out_nbr_.size() + in_nbr_.size()) * sizeof(DestT);
    }

  private:
    vid_t num_vertices_ = 0;
    bool directed_ = false;
    std::vector<eid_t> out_off_{0};
    std::vector<DestT> out_nbr_;
    std::vector<eid_t> in_off_;
    std::vector<DestT> in_nbr_;
};

/** Unweighted CSR graph. */
using CSRGraph = CSRGraphT<vid_t>;
/** Weighted CSR graph. */
using WCSRGraph = CSRGraphT<WNode>;

} // namespace gm::graph
