/**
 * @file
 * Synthetic generators for the five GAP input-graph topology classes.
 *
 * The real GAP graphs are 24M–134M-vertex downloads; this repository
 * generates laptop-scale analogues that preserve each graph's *topological
 * class* (directedness, degree distribution, relative diameter) — see the
 * substitution table in DESIGN.md.
 */
#pragma once

#include <cstdint>

#include "gm/graph/csr.hh"
#include "gm/graph/edge_list.hh"

namespace gm::graph
{

/** Erdős–Rényi-style uniform random graph ("Urand" class).
 *  n = 2^scale vertices, average degree @p degree, undirected. */
CSRGraph make_uniform(int scale, int degree, std::uint64_t seed);

/** Graph500 Kronecker graph ("Kron" class): A/B/C = 0.57/0.19/0.19,
 *  n = 2^scale vertices, edgefactor = @p degree / 2, undirected. */
CSRGraph make_kronecker(int scale, int degree, std::uint64_t seed);

/** Generic RMAT generator; @p a + @p b + @p c <= 1. */
EdgeList rmat_edges(int scale, eid_t num_edges, double a, double b, double c,
                    std::uint64_t seed);

/** Twitter-follow-style graph: directed, power-law, low diameter. */
CSRGraph make_twitter_like(int scale, int degree, std::uint64_t seed);

/** Web-crawl-style graph: directed, power-law in-degree via a copying
 *  model, with occasional page chains that stretch the diameter. */
CSRGraph make_web_like(int scale, int degree, std::uint64_t seed);

/** Road-network-style graph: directed near-planar grid with mostly two-way
 *  segments, bounded degree, very high diameter. */
CSRGraph make_road_like(vid_t rows, vid_t cols, std::uint64_t seed);

} // namespace gm::graph
