/**
 * @file
 * Graph file IO: GAP-style text edge lists (.el / .wel) and a fast binary
 * CSR serialization (.gmg) for benchmark caching.
 */
#pragma once

#include <string>

#include "gm/graph/csr.hh"
#include "gm/graph/edge_list.hh"

namespace gm::graph
{

/** Read a whitespace-separated "u v" edge list; ids define the vertex
 *  count (max id + 1). */
EdgeList read_edge_list(const std::string& path, vid_t* num_vertices);

/** Read a "u v w" weighted edge list. */
WEdgeList read_weighted_edge_list(const std::string& path,
                                  vid_t* num_vertices);

/** Write "u v" lines for all stored (directed) edges. */
void write_edge_list(const CSRGraph& graph, const std::string& path);

/** Serialize a CSR graph to a binary .gmg file. */
void save_binary(const CSRGraph& graph, const std::string& path);

/** Load a CSR graph from a binary .gmg file. */
CSRGraph load_binary(const std::string& path);

} // namespace gm::graph
