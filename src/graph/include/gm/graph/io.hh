/**
 * @file
 * Graph file IO: GAP-style text edge lists (.el / .wel) and a fast binary
 * CSR serialization (.gmg) for benchmark caching.
 *
 * Every reader returns StatusOr so corrupt or truncated inputs surface as
 * recoverable errors (kInvalidInput / kCorruptData) instead of killing a
 * multi-hour sweep.  The binary format is versioned and self-validating:
 * magic + version header, size fields bounded against the file length,
 * monotonicity / range checks on the CSR arrays, and a trailing FNV-1a
 * checksum over the payload.
 */
#pragma once

#include <string>

#include "gm/graph/csr.hh"
#include "gm/graph/edge_list.hh"
#include "gm/support/status.hh"

namespace gm::graph
{

using support::Status;
using support::StatusOr;

/**
 * Read a whitespace-separated "u v" edge list; ids define the vertex
 * count (max id + 1).  Blank lines and '#' comments are skipped; any
 * malformed, negative, or overflowing id fails with the line number.
 */
StatusOr<EdgeList> read_edge_list(const std::string& path,
                                  vid_t* num_vertices);

/** Read a "u v w" weighted edge list; rejects NaN/negative weights. */
StatusOr<WEdgeList> read_weighted_edge_list(const std::string& path,
                                            vid_t* num_vertices);

/** Write "u v" lines for all stored (directed) edges. */
Status write_edge_list(const CSRGraph& graph, const std::string& path);

/** Serialize a CSR graph to a binary .gmg file (v2, checksummed). */
Status save_binary(const CSRGraph& graph, const std::string& path);

/** Load a CSR graph from a binary .gmg file, validating the header,
 *  array bounds, CSR invariants, and checksum. */
StatusOr<CSRGraph> load_binary(const std::string& path);

} // namespace gm::graph
