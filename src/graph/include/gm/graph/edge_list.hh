/**
 * @file
 * Edge-list types: the interchange format between generators, file IO, and
 * the CSR builder.
 */
#pragma once

#include <vector>

#include "gm/support/types.hh"

namespace gm::graph
{

/** Unweighted directed edge u -> v. */
struct Edge
{
    vid_t u;
    vid_t v;

    friend bool operator==(const Edge&, const Edge&) = default;
};

/** Weighted directed edge u -> v with weight w. */
struct WEdge
{
    vid_t u;
    vid_t v;
    weight_t w;

    friend bool operator==(const WEdge&, const WEdge&) = default;
};

using EdgeList = std::vector<Edge>;
using WEdgeList = std::vector<WEdge>;

} // namespace gm::graph
