/**
 * @file
 * Shared level-synchronous frontier machinery for BFS-shaped traversals.
 *
 * Two entry points:
 *
 *  - level_sync_sweep(): the single-source level-synchronous sweep that
 *    used to live inside the GAP reference BC kernel.  It owns the
 *    mechanics every Brandes-style forward pass needs — the sliding
 *    multi-frontier queue, the CAS depth claim, and the per-level window
 *    bookkeeping — and reports each shortest-path edge to a caller
 *    callback, so BC can keep its successor bitmap and path counting
 *    without re-implementing the traversal.
 *
 *  - multi_source_bfs_depths(): the bit-parallel generalization.  Up to
 *    kMaxFusedSources sources advance together through one sweep, each
 *    vertex carrying a 64-bit mask of the sources that have reached it;
 *    a frontier edge ORs the still-unseen mask bits into the target in
 *    one atomic word operation, so a 64-source batch costs one traversal
 *    instead of 64.  The output is per-source depths — depths are a pure
 *    function of the level structure (never of visit order), so the
 *    result is bit-identical at any GM_THREADS / lease width and equal to
 *    running the sources one at a time.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "gm/graph/csr.hh"
#include "gm/par/atomics.hh"
#include "gm/par/parallel_for.hh"
#include "gm/support/sliding_queue.hh"
#include "gm/support/types.hh"

namespace gm::graph
{

/** Sources one fused sweep can carry (one bit per source). */
inline constexpr int kMaxFusedSources = 64;

/**
 * Level-synchronous single-source sweep over @p g from @p source.
 *
 * @p depth must be pre-filled with kInvalidVid; on return it holds BFS
 * depths.  @p queue (capacity >= num_vertices + 1) ends up holding every
 * frontier back-to-back, with @p depth_index recording the level
 * boundaries (depth_index[d] is the offset of level d's frontier;
 * one trailing entry marks the end) — exactly what a Brandes backward
 * pass walks.
 *
 * @p on_shortest_edge(u, e, v) fires for every edge e = (u, v) that links
 * a depth-d vertex to a depth-(d+1) vertex, i.e. every shortest-path tree
 * candidate.  It runs concurrently across lanes and must be thread-safe;
 * it is never invoked twice for the same edge slot.
 */
template <typename OnShortestEdge>
void
level_sync_sweep(const CSRGraph& g, vid_t source, std::vector<vid_t>& depth,
                 SlidingQueue<vid_t>& queue,
                 std::vector<std::size_t>& depth_index,
                 OnShortestEdge&& on_shortest_edge)
{
    depth[source] = 0;
    queue.push_back(source);
    depth_index.clear();
    std::size_t frontier_begin = 0;
    queue.slide_window();

    const auto& offsets = g.out_offsets();
    const auto& dests = g.out_destinations();

    while (!queue.empty()) {
        depth_index.push_back(frontier_begin);
        const vid_t* frontier = queue.begin();
        const std::size_t frontier_size = queue.size();
        frontier_begin += frontier_size;
        par::parallel_lanes([&](int lane, int lanes) {
            QueueBuffer<vid_t> local(queue);
            for (std::size_t i = lane; i < frontier_size;
                 i += static_cast<std::size_t>(lanes)) {
                const vid_t u = frontier[i];
                const vid_t next_depth = depth[u] + 1;
                for (eid_t e = offsets[u]; e < offsets[u + 1]; ++e) {
                    const vid_t v = dests[e];
                    vid_t v_depth = par::atomic_load(depth[v]);
                    if (v_depth == kInvalidVid) {
                        if (par::compare_and_swap(depth[v], kInvalidVid,
                                                  next_depth)) {
                            local.push_back(v);
                            v_depth = next_depth;
                        } else {
                            v_depth = par::atomic_load(depth[v]);
                        }
                    }
                    if (v_depth == next_depth)
                        on_shortest_edge(u, e, v);
                }
            }
            local.flush();
        });
        queue.slide_window();
    }
    depth_index.push_back(frontier_begin);
}

/**
 * Bit-parallel multi-source BFS over the out-edges of @p g.
 *
 * Sources are processed in fused sweeps of up to kMaxFusedSources each.
 * Returns a flat source-major depth array of size
 * sources.size() * num_vertices: entry [s * n + v] is the BFS depth of v
 * from sources[s], kInvalidVid when unreached.  Duplicate sources are
 * fine (they share frontier work and get identical slices).
 *
 * Deterministic: the payload is bit-identical at any lane width and equal
 * to sources.size() independent single-source runs.  Polls cooperative
 * cancellation once per level.
 */
std::vector<vid_t> multi_source_bfs_depths(const CSRGraph& g,
                                           const std::vector<vid_t>& sources);

} // namespace gm::graph
