/**
 * @file
 * Topology statistics used by Table I and by the frameworks' run-time
 * heuristics (degree-distribution sampling, approximate diameter).
 */
#pragma once

#include <cstdint>
#include <string>

#include "gm/graph/csr.hh"

namespace gm::graph
{

/** Degree summary. */
struct DegreeStats
{
    double average = 0;
    eid_t max = 0;
    double std_dev = 0;
};

/** Degree-distribution classes as labeled in the paper's Table I. */
enum class DegreeDistribution { kBounded, kNormal, kPower };

/** Human-readable name for a DegreeDistribution. */
std::string to_string(DegreeDistribution dist);

/** Exact degree summary over out-degrees. */
DegreeStats degree_stats(const CSRGraph& graph);

/**
 * Sampling-based degree-distribution classifier — the scheme the paper
 * says Galois uses to auto-pick algorithms in the Baseline data set.
 *
 * Samples @p num_samples vertices; classifies as power-law when the sampled
 * tail dominates the mean, bounded when the sampled max is a small constant,
 * normal otherwise.
 */
DegreeDistribution classify_degree_distribution(const CSRGraph& graph,
                                                std::uint64_t seed = 27,
                                                int num_samples = 1000);

/**
 * Approximate diameter via double-sweep BFS (lower bound): BFS from a random
 * vertex, then BFS again from the farthest vertex found.  @p num_sweeps
 * repeats from different starts and takes the max.
 */
vid_t approx_diameter(const CSRGraph& graph, int num_sweeps = 4,
                      std::uint64_t seed = 9);

/**
 * GAPBS-style sampling heuristic: is the degree distribution skewed enough
 * that relabeling vertices by degree will pay for itself in triangle
 * counting?  (sampled mean / 1.3 > sampled median, and average degree >= 10)
 */
bool worth_relabeling_by_degree(const CSRGraph& graph,
                                std::uint64_t seed = 10);

} // namespace gm::graph
