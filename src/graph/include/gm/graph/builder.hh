/**
 * @file
 * Edge-list -> CSR builder plus graph transforms (transpose, relabel).
 *
 * Per the paper (Section V): "all frameworks sort the adjacency list of each
 * vertex based on the destinations and remove duplicate edges" — that is the
 * builder's default behaviour.
 */
#pragma once

#include "gm/graph/csr.hh"
#include "gm/graph/edge_list.hh"
#include "gm/support/status.hh"

namespace gm::graph
{

/** Knobs for edge-list -> CSR conversion. */
struct BuildOptions
{
    /** Insert the reverse of every edge (forces an undirected graph). */
    bool symmetrize = false;
    /** Drop u -> u edges. */
    bool remove_self_loops = true;
    /** Sort each adjacency list by destination. */
    bool sort_neighbors = true;
    /** Remove duplicate edges (requires sort_neighbors). */
    bool dedup = true;
};

/**
 * Build an unweighted CSR graph.
 *
 * @param edges        Directed edge list (interpreted per @p directed).
 * @param num_vertices Vertex-id space size; ids must be in [0, n).
 * @param directed     When false, edges are symmetrized automatically.
 */
CSRGraph build_graph(const EdgeList& edges, vid_t num_vertices, bool directed,
                     const BuildOptions& opts = {});

/** Build a weighted CSR graph; see build_graph(). */
WCSRGraph build_wgraph(const WEdgeList& edges, vid_t num_vertices,
                       bool directed, const BuildOptions& opts = {});

/**
 * Validating build for untrusted edge lists: checks that every endpoint is
 * in [0, num_vertices) before building, and converts builder-level faults
 * (injected or otherwise) into a Status instead of unwinding the caller.
 */
support::StatusOr<CSRGraph> try_build_graph(const EdgeList& edges,
                                            vid_t num_vertices,
                                            bool directed,
                                            const BuildOptions& opts = {});

/** @copydoc try_build_graph */
support::StatusOr<WCSRGraph> try_build_wgraph(const WEdgeList& edges,
                                              vid_t num_vertices,
                                              bool directed,
                                              const BuildOptions& opts = {});

/**
 * Attach deterministic uniform weights in [1, 255] to an existing graph.
 * The weight of an undirected edge is identical in both stored directions
 * (it is derived from the unordered endpoint pair), matching the GAP rule
 * that SSSP weights are symmetric.
 */
WCSRGraph add_weights(const CSRGraph& graph, std::uint64_t seed);

/**
 * The deterministic per-edge weight used by add_weights(): uniform in
 * [1, 255], symmetric in (u, v), and independent of CSR layout.  Exposed so
 * layers that materialize weights lazily (e.g. the gm::dyn overlay's SSSP
 * maintenance) agree bit-for-bit with a store's weighted form.
 */
weight_t pair_weight(vid_t u, vid_t v, std::uint64_t seed);

/** Reverse every edge of a directed graph (no-op copy when undirected). */
CSRGraph transpose(const CSRGraph& graph);

/**
 * Relabel vertices by decreasing degree (ties by original id) and rebuild.
 * Used by triangle counting when the relabeling heuristic fires.
 *
 * @param[out] new_to_old When non-null, receives the permutation.
 */
CSRGraph relabel_by_degree(const CSRGraph& graph,
                           std::vector<vid_t>* new_to_old = nullptr);

} // namespace gm::graph
