#include "gm/graph/frontier.hh"

#include <algorithm>
#include <atomic>

#include "gm/support/watchdog.hh"

namespace gm::graph
{

namespace
{

/**
 * One fused sweep advancing sources [base, base + width) of @p sources.
 *
 * Per-vertex 64-bit masks: seen[v] holds every source that has reached v,
 * cur[v] the sources whose frontier contains v this level.  The expand
 * phase ORs cur[u] & ~seen[v] into next[v] atomically (OR is commutative,
 * so races change who writes, never the value); the settle phase — one
 * lane per frontier vertex, no races — commits the new bits into seen,
 * rotates them into cur, and records this level as the depth for every
 * source bit that just arrived.  Depths therefore depend only on the
 * level structure, making the output width-invariant.
 */
void
fused_sweep(const CSRGraph& g, const std::vector<vid_t>& sources,
            std::size_t base, int width, std::vector<vid_t>& depths)
{
    const vid_t n = g.num_vertices();
    const auto vertices = static_cast<std::size_t>(n);
    std::vector<std::uint64_t> seen(vertices, 0);
    std::vector<std::uint64_t> cur(vertices, 0);
    std::vector<std::uint64_t> next(vertices, 0);

    std::vector<vid_t> frontier;
    for (int s = 0; s < width; ++s) {
        const auto src = static_cast<std::size_t>(sources[base + s]);
        if (seen[src] == 0)
            frontier.push_back(sources[base + s]);
        seen[src] |= std::uint64_t{1} << s;
        cur[src] |= std::uint64_t{1} << s;
        depths[(base + s) * vertices + src] = 0;
    }

    const auto& offsets = g.out_offsets();
    const auto& dests = g.out_destinations();
    const int max_lanes = par::num_threads();

    std::vector<vid_t> next_frontier;
    std::vector<std::vector<vid_t>> locals(
        static_cast<std::size_t>(max_lanes));
    vid_t level = 0;
    while (!frontier.empty()) {
        support::check_cancelled();
        ++level;

        // Expand: propagate each frontier vertex's mask along its
        // out-edges.  seen[] is stable for the whole phase, so the
        // still-unseen filter is race-free; the first lane to put any bit
        // into next[v] claims v for the next frontier (dedup).
        par::parallel_lanes([&](int lane, int lanes) {
            std::vector<vid_t>& local = locals[static_cast<std::size_t>(lane)];
            for (std::size_t i = static_cast<std::size_t>(lane);
                 i < frontier.size(); i += static_cast<std::size_t>(lanes)) {
                const vid_t u = frontier[i];
                const std::uint64_t mask = cur[static_cast<std::size_t>(u)];
                for (eid_t e = offsets[u]; e < offsets[u + 1]; ++e) {
                    const auto v = static_cast<std::size_t>(dests[e]);
                    const std::uint64_t add = mask & ~seen[v];
                    if (add == 0)
                        continue;
                    std::atomic_ref<std::uint64_t> word(next[v]);
                    if (word.fetch_or(add, std::memory_order_relaxed) == 0)
                        local.push_back(dests[e]);
                }
            }
        });

        // Retire the old frontier's active masks (settle below re-fills
        // cur for vertices that gained bits this level).
        par::parallel_for<std::size_t>(
            0, frontier.size(),
            [&](std::size_t i) {
                cur[static_cast<std::size_t>(frontier[i])] = 0;
            },
            par::Schedule::kStatic);

        next_frontier.clear();
        for (auto& local : locals) {
            next_frontier.insert(next_frontier.end(), local.begin(),
                                 local.end());
            local.clear();
        }

        // Settle: one owner per new-frontier vertex; no concurrent
        // writers touch the same v.
        par::parallel_for<std::size_t>(
            0, next_frontier.size(), [&](std::size_t i) {
                const auto v =
                    static_cast<std::size_t>(next_frontier[i]);
                std::uint64_t fresh = next[v];
                next[v] = 0;
                seen[v] |= fresh;
                cur[v] = fresh;
                while (fresh != 0) {
                    const int s = __builtin_ctzll(fresh);
                    depths[(base + static_cast<std::size_t>(s)) * vertices +
                           v] = level;
                    fresh &= fresh - 1;
                }
            });
        frontier.swap(next_frontier);
    }
}

} // namespace

std::vector<vid_t>
multi_source_bfs_depths(const CSRGraph& g, const std::vector<vid_t>& sources)
{
    const auto vertices = static_cast<std::size_t>(g.num_vertices());
    std::vector<vid_t> depths(sources.size() * vertices, kInvalidVid);
    for (std::size_t base = 0; base < sources.size();
         base += kMaxFusedSources) {
        const int width = static_cast<int>(
            std::min<std::size_t>(kMaxFusedSources, sources.size() - base));
        fused_sweep(g, sources, base, width, depths);
    }
    return depths;
}

} // namespace gm::graph
