#include "gm/graph/stats.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "gm/par/parallel_for.hh"
#include "gm/support/rng.hh"

namespace gm::graph
{

std::string
to_string(DegreeDistribution dist)
{
    switch (dist) {
      case DegreeDistribution::kBounded:
        return "bounded";
      case DegreeDistribution::kNormal:
        return "normal";
      case DegreeDistribution::kPower:
        return "power";
    }
    return "?";
}

DegreeStats
degree_stats(const CSRGraph& graph)
{
    const vid_t n = graph.num_vertices();
    DegreeStats stats;
    if (n == 0)
        return stats;
    eid_t max_deg = 0;
    double sum = 0;
    double sum_sq = 0;
    for (vid_t v = 0; v < n; ++v) {
        const eid_t d = graph.out_degree(v);
        max_deg = std::max(max_deg, d);
        sum += static_cast<double>(d);
        sum_sq += static_cast<double>(d) * static_cast<double>(d);
    }
    stats.average = sum / n;
    stats.max = max_deg;
    const double var = sum_sq / n - stats.average * stats.average;
    stats.std_dev = var > 0 ? std::sqrt(var) : 0;
    return stats;
}

DegreeDistribution
classify_degree_distribution(const CSRGraph& graph, std::uint64_t seed,
                             int num_samples)
{
    const vid_t n = graph.num_vertices();
    if (n == 0)
        return DegreeDistribution::kBounded;
    Xoshiro256 rng(seed);
    eid_t sampled_max = 0;
    double sampled_sum = 0;
    for (int i = 0; i < num_samples; ++i) {
        const vid_t v = static_cast<vid_t>(rng.next_bounded(n));
        // Directed graphs can hide their skew in either direction (web
        // crawls have power-law in-degree); sample the larger side.
        const eid_t d = graph.is_directed()
                            ? std::max(graph.out_degree(v),
                                       graph.in_degree(v))
                            : graph.out_degree(v);
        sampled_max = std::max(sampled_max, d);
        sampled_sum += static_cast<double>(d);
    }
    const double avg = sampled_sum / num_samples;
    // A power-law sample almost always catches a hub far above the mean.
    if (avg > 0 && static_cast<double>(sampled_max) > 8.0 * avg &&
        sampled_max > 32) {
        return DegreeDistribution::kPower;
    }
    if (sampled_max <= 8)
        return DegreeDistribution::kBounded;
    return DegreeDistribution::kNormal;
}

namespace
{

/** Serial BFS returning (farthest vertex, its depth). */
std::pair<vid_t, vid_t>
bfs_farthest(const CSRGraph& graph, vid_t source)
{
    std::vector<vid_t> depth(graph.num_vertices(), kInvalidVid);
    std::vector<vid_t> queue;
    queue.push_back(source);
    depth[source] = 0;
    vid_t far_v = source;
    vid_t far_d = 0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
        const vid_t v = queue[head];
        for (vid_t u : graph.out_neigh(v)) {
            if (depth[u] == kInvalidVid) {
                depth[u] = depth[v] + 1;
                if (depth[u] > far_d) {
                    far_d = depth[u];
                    far_v = u;
                }
                queue.push_back(u);
            }
        }
    }
    return {far_v, far_d};
}

} // namespace

bool
worth_relabeling_by_degree(const CSRGraph& g, std::uint64_t seed)
{
    const std::int64_t average_degree =
        g.num_edges_directed() / std::max<vid_t>(g.num_vertices(), 1);
    if (average_degree < 10)
        return false;
    const vid_t n = g.num_vertices();
    const int num_samples = static_cast<int>(std::min<std::int64_t>(1000, n));
    std::vector<eid_t> samples(static_cast<std::size_t>(num_samples));
    Xoshiro256 rng(seed);
    std::int64_t sample_total = 0;
    for (int i = 0; i < num_samples; ++i) {
        samples[static_cast<std::size_t>(i)] =
            g.out_degree(static_cast<vid_t>(rng.next_bounded(n)));
        sample_total += samples[static_cast<std::size_t>(i)];
    }
    std::sort(samples.begin(), samples.end());
    const double sample_average =
        static_cast<double>(sample_total) / num_samples;
    const double sample_median = static_cast<double>(
        samples[static_cast<std::size_t>(num_samples / 2)]);
    return sample_average / 1.3 > sample_median;
}

vid_t
approx_diameter(const CSRGraph& graph, int num_sweeps, std::uint64_t seed)
{
    const vid_t n = graph.num_vertices();
    if (n == 0)
        return 0;
    Xoshiro256 rng(seed);
    vid_t best = 0;
    for (int sweep = 0; sweep < num_sweeps; ++sweep) {
        vid_t start = static_cast<vid_t>(rng.next_bounded(n));
        // Skip isolated starting points.
        for (int tries = 0; graph.out_degree(start) == 0 && tries < 64;
             ++tries) {
            start = static_cast<vid_t>(rng.next_bounded(n));
        }
        auto [far_v, far_d] = bfs_farthest(graph, start);
        auto [far_v2, far_d2] = bfs_farthest(graph, far_v);
        (void)far_v2;
        best = std::max({best, far_d, far_d2});
    }
    return best;
}

} // namespace gm::graph
