#include "gm/serve/breaker.hh"

#include "gm/support/log.hh"
#include "gm/telemetry/registry.hh"

namespace gm::serve
{

namespace
{

/** Telemetry for breaker state machines.  Transition counters are keyed
 *  by destination state; per-cell gauges encode the state as a number
 *  (0 = closed, 1 = open, 2 = half_open); open_cells counts cells not
 *  currently closed.  Handles resolve lazily (transitions are rare and
 *  already hold the breaker mutex). */
struct BreakerTelemetry
{
    telemetry::Counter& to_open;
    telemetry::Counter& to_half_open;
    telemetry::Counter& to_closed;
    telemetry::Gauge& open_cells;

    BreakerTelemetry()
        : to_open(telemetry::Registry::global().counter(telemetry::labeled(
              "gm_serve_breaker_transitions_total", {{"to", "open"}}))),
          to_half_open(
              telemetry::Registry::global().counter(telemetry::labeled(
                  "gm_serve_breaker_transitions_total",
                  {{"to", "half_open"}}))),
          to_closed(
              telemetry::Registry::global().counter(telemetry::labeled(
                  "gm_serve_breaker_transitions_total",
                  {{"to", "closed"}}))),
          open_cells(telemetry::Registry::global().gauge(
              "gm_serve_breaker_open_cells"))
    {
    }
};

BreakerTelemetry&
breaker_telemetry()
{
    static BreakerTelemetry* t = new BreakerTelemetry();
    return *t;
}

double
state_number(CircuitBreaker::State state)
{
    switch (state) {
      case CircuitBreaker::State::kClosed:
        return 0;
      case CircuitBreaker::State::kOpen:
        return 1;
      case CircuitBreaker::State::kHalfOpen:
        return 2;
    }
    return 0;
}

} // namespace

CircuitBreaker::CircuitBreaker(BreakerOptions options,
                               support::Clock* clock)
    : options_(options),
      clock_(clock != nullptr ? clock : support::Clock::system())
{
    GM_ASSERT(options_.failure_threshold >= 1,
              "breaker needs failure_threshold >= 1");
    GM_ASSERT(options_.window_ns > 0, "breaker needs a positive window");
    GM_ASSERT(options_.cooldown_ns > 0,
              "breaker needs a positive cooldown");
    GM_ASSERT(options_.half_open_probes >= 1,
              "breaker needs >= 1 half-open probe");
    GM_ASSERT(options_.close_successes >= 1,
              "breaker needs close_successes >= 1");
}

const char*
CircuitBreaker::to_string(State state)
{
    switch (state) {
      case State::kClosed:
        return "closed";
      case State::kOpen:
        return "open";
      case State::kHalfOpen:
        return "half_open";
    }
    return "?";
}

CircuitBreaker::Cell&
CircuitBreaker::cell_for(const std::string& name)
{
    return cells_[name];
}

void
CircuitBreaker::prune(Cell& cell, std::int64_t now_ns) const
{
    while (!cell.failures_ns.empty() &&
           now_ns - cell.failures_ns.front() >= options_.window_ns)
        cell.failures_ns.pop_front();
}

void
CircuitBreaker::transition(const std::string& name, Cell& cell, State to,
                           std::int64_t now_ns)
{
    if (cell.state == to)
        return;
    transitions_.push_back(
        {name, cell.state, to, now_ns, transition_seq_++});
    BreakerTelemetry& bt = breaker_telemetry();
    switch (to) {
      case State::kOpen:
        bt.to_open.inc();
        break;
      case State::kHalfOpen:
        bt.to_half_open.inc();
        break;
      case State::kClosed:
        bt.to_closed.inc();
        break;
    }
    if (cell.state == State::kClosed && to != State::kClosed)
        bt.open_cells.add(1);
    else if (cell.state != State::kClosed && to == State::kClosed)
        bt.open_cells.add(-1);
    telemetry::Registry::global()
        .gauge(telemetry::labeled("gm_serve_breaker_state",
                                  {{"cell", name}}))
        .set(state_number(to));
    cell.state = to;
    if (to == State::kOpen) {
        cell.opened_at_ns = now_ns;
        cell.probes_in_flight = 0;
        cell.probe_successes = 0;
    } else if (to == State::kHalfOpen) {
        cell.probes_in_flight = 0;
        cell.probe_successes = 0;
    } else { // closed: a fresh start
        cell.failures_ns.clear();
        cell.probes_in_flight = 0;
        cell.probe_successes = 0;
    }
}

CircuitBreaker::Gate
CircuitBreaker::admit(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mu_);
    Cell& cell = cell_for(name);
    const std::int64_t now = clock_->now_ns();
    switch (cell.state) {
      case State::kClosed:
        return Gate::kAllow;
      case State::kOpen:
        if (now - cell.opened_at_ns < options_.cooldown_ns)
            return Gate::kReject;
        transition(name, cell, State::kHalfOpen, now);
        [[fallthrough]];
      case State::kHalfOpen:
        if (cell.probes_in_flight >= options_.half_open_probes)
            return Gate::kReject;
        ++cell.probes_in_flight;
        return Gate::kProbe;
    }
    return Gate::kAllow;
}

void
CircuitBreaker::record_success(const std::string& name, bool probe)
{
    std::lock_guard<std::mutex> lock(mu_);
    Cell& cell = cell_for(name);
    const std::int64_t now = clock_->now_ns();
    if (probe && cell.state == State::kHalfOpen) {
        if (cell.probes_in_flight > 0)
            --cell.probes_in_flight;
        if (++cell.probe_successes >= options_.close_successes)
            transition(name, cell, State::kClosed, now);
        return;
    }
    // A non-probe success in a closed breaker ages the window naturally;
    // nothing to record.
    prune(cell, now);
}

void
CircuitBreaker::record_failure(const std::string& name, bool probe)
{
    std::lock_guard<std::mutex> lock(mu_);
    Cell& cell = cell_for(name);
    const std::int64_t now = clock_->now_ns();
    if (probe && cell.state == State::kHalfOpen) {
        // The cell is still sick: back to open, cooldown restarts.
        transition(name, cell, State::kOpen, now);
        return;
    }
    cell.failures_ns.push_back(now);
    prune(cell, now);
    if (cell.state == State::kClosed &&
        static_cast<int>(cell.failures_ns.size()) >=
            options_.failure_threshold)
        transition(name, cell, State::kOpen, now);
}

void
CircuitBreaker::release(const std::string& name, bool probe)
{
    if (!probe)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    Cell& cell = cell_for(name);
    if (cell.state == State::kHalfOpen && cell.probes_in_flight > 0)
        --cell.probes_in_flight;
}

CircuitBreaker::State
CircuitBreaker::state(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cells_.find(name);
    return it == cells_.end() ? State::kClosed : it->second.state;
}

std::size_t
CircuitBreaker::open_cells() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t open = 0;
    for (const auto& [name, cell] : cells_)
        if (cell.state != State::kClosed)
            ++open;
    return open;
}

std::vector<CircuitBreaker::Transition>
CircuitBreaker::drain_transitions()
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Transition> out;
    out.swap(transitions_);
    return out;
}

std::uint64_t
CircuitBreaker::transition_count() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return transition_seq_;
}

} // namespace gm::serve
