/**
 * @file
 * Serve-internal state shared by server.cc and plan_exec.cc — the
 * telemetry handle bundle, the lane-budget gate, and the per-request /
 * per-plan state records.  Not installed: include/ stays the public
 * surface; this header exists so the plan executor lives in its own
 * translation unit without re-declaring the server's internals.
 */
#pragma once

#include <algorithm>
#include <atomic>
#include <cctype>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gm/harness/dataset.hh"
#include "gm/harness/framework.hh"
#include "gm/serve/server.hh"
#include "gm/support/status.hh"
#include "gm/support/watchdog.hh"
#include "gm/telemetry/registry.hh"

namespace gm::serve::detail
{

/** Match a framework by display name or lowercase alias. */
inline const harness::Framework*
find_framework(const std::vector<harness::Framework>& frameworks,
               const std::string& name)
{
    std::string lower = name;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    for (const auto& fw : frameworks) {
        std::string fw_lower = fw.name;
        std::transform(fw_lower.begin(), fw_lower.end(), fw_lower.begin(),
                       [](unsigned char c) { return std::tolower(c); });
        if (name == fw.name || lower == fw_lower)
            return &fw;
    }
    return nullptr;
}

/**
 * Every registry handle the server's hot paths touch, acquired once at
 * construction so serving a request costs relaxed atomic ops only —
 * never a name lookup.  Null on the Server when enable_telemetry=false.
 *
 * Latency histograms are pre-created for the full kernel x priority
 * grid; all series live in telemetry::Registry::global() and are
 * cumulative across servers in the process.
 */
struct ServeTelemetry
{
    static constexpr int kKernels = 6; ///< harness::Kernel cardinality

    telemetry::Counter* submitted = nullptr;
    telemetry::Counter* accepted[kPriorityClasses] = {};
    telemetry::Counter* shed[kPriorityClasses] = {};
    telemetry::Gauge* queue_depth[kPriorityClasses] = {};
    telemetry::Counter* infeasible = nullptr;
    telemetry::Counter* unavailable = nullptr;
    telemetry::Counter* succeeded = nullptr;
    telemetry::Counter* failed = nullptr;
    telemetry::Counter* deadline_exceeded = nullptr;
    telemetry::Counter* cancelled = nullptr;
    telemetry::Counter* degraded = nullptr;
    telemetry::Counter* executions = nullptr;
    telemetry::Counter* lanes_requested = nullptr;
    telemetry::Counter* lanes_granted = nullptr;
    telemetry::Gauge* lanes_in_use = nullptr;
    telemetry::Counter* retries = nullptr;
    telemetry::Counter* retry_denied = nullptr;
    telemetry::Gauge* retry_tokens = nullptr;
    telemetry::Histogram* latency_ns[kKernels][kPriorityClasses] = {};
    telemetry::Histogram* queue_wait_ns = nullptr;
    telemetry::Histogram* execute_ns = nullptr;
    /** Parallel efficiency in millionths (0..1e6): integer-valued so the
     *  log-linear buckets resolve the interesting 0.5..1.0 range. */
    telemetry::Histogram* parallel_efficiency_millionths = nullptr;
    telemetry::Gauge* slo_availability_short = nullptr;
    telemetry::Gauge* slo_availability_long = nullptr;
    telemetry::Gauge* slo_fresh_availability_short = nullptr;
    telemetry::Gauge* slo_fresh_availability_long = nullptr;
    telemetry::Gauge* slo_burn_short = nullptr;
    telemetry::Gauge* slo_burn_long = nullptr;
    telemetry::Gauge* slo_firing = nullptr;
    telemetry::Gauge* slo_p99_short_ns = nullptr;
    telemetry::Gauge* slo_availability_lifetime = nullptr;
    telemetry::Counter* dyn_batches = nullptr;
    telemetry::Counter* dyn_inserted_arcs = nullptr;
    telemetry::Counter* dyn_deleted_arcs = nullptr;
    telemetry::Counter* dyn_compactions = nullptr;
    telemetry::Counter* dyn_incremental = nullptr;
    telemetry::Counter* dyn_full = nullptr;
    telemetry::Gauge* dyn_generation = nullptr;
    telemetry::Gauge* dyn_dirty_fraction = nullptr;
    telemetry::Gauge* dyn_overlay_bytes = nullptr;
    telemetry::Histogram* dyn_batch_edges = nullptr;
    telemetry::Histogram* dyn_mutate_ns = nullptr;
    telemetry::Counter* plans_submitted = nullptr;
    telemetry::Counter* plans_completed = nullptr;
    telemetry::Counter* plans_failed = nullptr;
    telemetry::Counter* plan_nodes = nullptr;
    telemetry::Counter* plan_nodes_executed = nullptr;
    telemetry::Counter* plan_node_cache_hits = nullptr;
    telemetry::Counter* plan_nodes_shared = nullptr;
    telemetry::Counter* plan_fused_sweeps = nullptr;
    telemetry::Counter* plan_sources_fused = nullptr;
    telemetry::Gauge* plan_inflight = nullptr;
    telemetry::Histogram* plan_node_execute_ns = nullptr;
    telemetry::Histogram* plan_service_ns = nullptr;

    ServeTelemetry()
    {
        telemetry::Registry& reg = telemetry::Registry::global();
        submitted = &reg.counter("gm_serve_submitted_total");
        for (int p = 0; p < kPriorityClasses; ++p) {
            const std::string cls = to_string(static_cast<Priority>(p));
            accepted[p] = &reg.counter(telemetry::labeled(
                "gm_serve_admission_accepted_total", {{"class", cls}}));
            shed[p] = &reg.counter(telemetry::labeled(
                "gm_serve_admission_shed_total", {{"class", cls}}));
            queue_depth[p] = &reg.gauge(telemetry::labeled(
                "gm_serve_queue_depth", {{"class", cls}}));
        }
        infeasible = &reg.counter("gm_serve_admission_infeasible_total");
        unavailable = &reg.counter("gm_serve_unavailable_total");
        succeeded = &reg.counter(telemetry::labeled(
            "gm_serve_completed_total", {{"status", "succeeded"}}));
        failed = &reg.counter(telemetry::labeled(
            "gm_serve_completed_total", {{"status", "failed"}}));
        deadline_exceeded = &reg.counter(
            telemetry::labeled("gm_serve_completed_total",
                               {{"status", "deadline_exceeded"}}));
        cancelled = &reg.counter(telemetry::labeled(
            "gm_serve_completed_total", {{"status", "cancelled"}}));
        degraded = &reg.counter("gm_serve_degraded_total");
        executions = &reg.counter("gm_serve_executions_total");
        lanes_requested = &reg.counter("gm_serve_lanes_requested_total");
        lanes_granted = &reg.counter("gm_serve_lanes_granted_total");
        lanes_in_use = &reg.gauge("gm_serve_lanes_in_use");
        retries = &reg.counter("gm_serve_retries_total");
        retry_denied = &reg.counter("gm_serve_retry_denied_total");
        retry_tokens = &reg.gauge("gm_serve_retry_budget_tokens");
        for (int k = 0; k < kKernels; ++k) {
            const std::string kernel =
                harness::to_string(static_cast<harness::Kernel>(k));
            for (int p = 0; p < kPriorityClasses; ++p)
                latency_ns[k][p] = &reg.histogram(telemetry::labeled(
                    "gm_serve_latency_ns",
                    {{"kernel", kernel},
                     {"priority",
                      to_string(static_cast<Priority>(p))}}));
        }
        queue_wait_ns = &reg.histogram("gm_serve_queue_wait_ns");
        execute_ns = &reg.histogram("gm_serve_execute_ns");
        parallel_efficiency_millionths =
            &reg.histogram("gm_serve_parallel_efficiency_millionths");
        slo_availability_short = &reg.gauge("gm_slo_availability_short");
        slo_availability_long = &reg.gauge("gm_slo_availability_long");
        slo_fresh_availability_short =
            &reg.gauge("gm_slo_fresh_availability_short");
        slo_fresh_availability_long =
            &reg.gauge("gm_slo_fresh_availability_long");
        slo_burn_short = &reg.gauge("gm_slo_burn_short");
        slo_burn_long = &reg.gauge("gm_slo_burn_long");
        slo_firing = &reg.gauge("gm_slo_firing");
        slo_p99_short_ns = &reg.gauge("gm_slo_p99_short_ns");
        slo_availability_lifetime =
            &reg.gauge("gm_slo_availability_lifetime");
        dyn_batches = &reg.counter("gm_dyn_batches_total");
        dyn_inserted_arcs = &reg.counter("gm_dyn_inserted_arcs_total");
        dyn_deleted_arcs = &reg.counter("gm_dyn_deleted_arcs_total");
        dyn_compactions = &reg.counter("gm_dyn_compactions_total");
        dyn_incremental =
            &reg.counter("gm_dyn_incremental_updates_total");
        dyn_full = &reg.counter("gm_dyn_full_rebuilds_total");
        dyn_generation = &reg.gauge("gm_dyn_generation");
        dyn_dirty_fraction = &reg.gauge("gm_dyn_dirty_fraction");
        dyn_overlay_bytes = &reg.gauge("gm_dyn_overlay_bytes");
        dyn_batch_edges = &reg.histogram("gm_dyn_batch_edges");
        dyn_mutate_ns = &reg.histogram("gm_dyn_mutate_ns");
        plans_submitted = &reg.counter("gm_plan_submitted_total");
        plans_completed = &reg.counter("gm_plan_completed_total");
        plans_failed = &reg.counter("gm_plan_failed_total");
        plan_nodes = &reg.counter("gm_plan_nodes_total");
        plan_nodes_executed = &reg.counter("gm_plan_nodes_executed_total");
        plan_node_cache_hits =
            &reg.counter("gm_plan_node_cache_hits_total");
        plan_nodes_shared = &reg.counter("gm_plan_nodes_shared_total");
        plan_fused_sweeps = &reg.counter("gm_plan_fused_sweeps_total");
        plan_sources_fused = &reg.counter("gm_plan_sources_fused_total");
        plan_inflight = &reg.gauge("gm_plan_inflight");
        plan_node_execute_ns =
            &reg.histogram("gm_plan_node_execute_ns");
        plan_service_ns = &reg.histogram("gm_plan_service_ns");
    }

    telemetry::Counter&
    completed_for(support::StatusCode code)
    {
        switch (code) {
          case support::StatusCode::kOk:
            return *succeeded;
          case support::StatusCode::kDeadlineExceeded:
            return *deadline_exceeded;
          case support::StatusCode::kCancelled:
            return *cancelled;
          default:
            return *failed;
        }
    }
};

/**
 * Core-budget scheduler state: lanes charged to currently executing
 * leaders, plus the condition variable lane waiters block on.  Waits are
 * event-driven — release_lanes(), Handle::cancel(), and shutdown() all
 * notify cv — so acquire_lanes never has to poll.  Shared-ptr-owned by
 * the Server and by every RequestState: cancel() wakes waiters through
 * the request's own reference, never through the server, so a Handle
 * outliving the Server stays safe.
 */
struct LaneGate
{
    std::mutex mu;
    std::condition_variable cv;
    int in_use = 0; ///< lanes held by executing leaders; guarded by mu
};

/** Everything one submitted request carries through the pipeline.  Heap-
 *  owned (shared by the Handle, the queue, and the worker), so a caller
 *  abandoning its Handle never invalidates an executing request. */
struct RequestState
{
    Request req;
    const harness::Framework* fw = nullptr;
    std::shared_ptr<const harness::Dataset> ds;
    std::string cache_key;
    std::string cell_key; ///< breaker key: framework/kernel/graph

    std::shared_ptr<support::CancelToken> token =
        std::make_shared<support::CancelToken>();
    std::int64_t submit_ns = 0;
    std::int64_t deadline_ns = 0; ///< absolute Timer::now_ns(); 0 = none
    /** Half-open probe: the breaker granted this request a probe slot;
     *  its outcome (or non-execution) must be reported back.  Written
     *  before enqueue, read after the queue handoff. */
    bool probe = false;
    std::atomic<bool> user_cancelled{false};
    /** The server's lane gate; lets cancel() wake a leader blocked in
     *  acquire_lanes without touching the (possibly destroyed) server. */
    std::shared_ptr<LaneGate> gate;

    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    support::Status status;
    QueryResult result;
};

/**
 * Everything one submitted plan carries: the request, resolved handles,
 * one cancel token per node (plus the plan-wide one), and the
 * handle-visible completion slot.  Heap-owned, shared by the PlanHandle
 * and the driver thread, for the same lifetime reason as RequestState.
 */
struct PlanState
{
    PlanRequest req;
    const harness::Framework* fw = nullptr;
    std::shared_ptr<const harness::Dataset> ds;
    /** Plan-wide cancel: PlanHandle::cancel() raises it; every node
     *  token mirrors it so executing kernels unwind cooperatively. */
    std::shared_ptr<support::CancelToken> token =
        std::make_shared<support::CancelToken>();
    /** One token per node, indexed by node id: the node's deadline timer
     *  raises only its own token, so one slow node expires without
     *  cancelling siblings mid-kernel. */
    std::vector<std::shared_ptr<support::CancelToken>> node_tokens;
    /** The server's lane gate (see RequestState::gate). */
    std::shared_ptr<LaneGate> gate;
    std::int64_t submit_ns = 0;

    /** Per-node outcomes, indexed by node id.  Each slot is written by
     *  exactly one node thread and read by the driver only after that
     *  thread joined — no lock needed. */
    std::vector<PlanNodeResult> node_results;
    /** Per-node data generations (same access discipline). */
    std::vector<std::uint64_t> node_generations;

    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    support::Status status;
    PlanResult result;
};

} // namespace gm::serve::detail
