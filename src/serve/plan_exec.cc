/**
 * @file
 * Server::submit_plan — the serve-side executor for gm::plan DAGs.
 *
 * Each accepted plan gets a driver thread that walks the plan's
 * topological waves; nodes within a wave run concurrently, one thread
 * each.  Every node is served through the same ResultCache the query
 * path uses, keyed by (structural sub-plan fingerprint, graph
 * generation): a node whose sub-plan was computed before is a cache hit,
 * a node whose sub-plan is computing right now — in this plan or any
 * concurrently submitted one — joins that flight as a follower, and
 * otherwise the node leads, charging its width against the server's lane
 * budget before executing.  The net effect is the exactly-once
 * guarantee: a sub-plan shared by two simultaneous plans executes its
 * kernel once, whichever plan gets there first.
 *
 * Plan cache keys live in their own "plan/" namespace: plan BFS nodes
 * answer depths (canonical under multi-source fusion) while query BFS
 * answers parents, so the two must never share an entry even for the
 * same graph and source.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "gm/graph/frontier.hh"
#include "gm/par/thread_pool.hh"
#include "gm/plan/execute.hh"
#include "gm/serve/server.hh"
#include "gm/support/fault_injector.hh"
#include "gm/support/json.hh"
#include "gm/support/log.hh"
#include "gm/support/timer.hh"
#include "gm/support/watchdog.hh"
#include "serve_internal.hh"

namespace gm::serve
{

using support::Status;
using support::StatusCode;
using support::StatusOr;
using detail::PlanState;

namespace
{

/** Traversal nodes parallelize and get the plan's width; aggregations
 *  are cheap serial folds and charge a single lane (still nonzero, so a
 *  concurrent mutate() cannot move the generation under them). */
int
node_width(const plan::Node& node, int plan_width)
{
    return node.op == plan::Op::kKernel || node.op == plan::Op::kBatch
               ? plan_width
               : 1;
}

/** Fused-traversal accounting for one node: bit-parallel sweeps and the
 *  sources they covered.  Only BFS batches fuse (SSSP batches run per
 *  source; see plan::execute). */
void
fusion_stats(const plan::Node& node, int& sweeps, int& sources)
{
    sweeps = 0;
    sources = 0;
    if (node.op != plan::Op::kBatch ||
        node.kernel != harness::Kernel::kBFS)
        return;
    const int n = static_cast<int>(node.sources.size());
    sweeps = (n + graph::kMaxFusedSources - 1) / graph::kMaxFusedSources;
    sources = n;
}

/**
 * Cache identity of one sub-plan result: the graph pinned by stable
 * store identity plus mode and framework (different frameworks may
 * produce different — equally valid — CC labelings), then the
 * structural sub-plan fingerprint.  The "plan/" prefix keeps these
 * entries disjoint from query entries by construction.
 */
std::string
make_plan_node_key(const PlanState& state, std::uint64_t fingerprint)
{
    std::ostringstream key;
    key << "plan/" << harness::to_string(state.req.mode) << "/"
        << state.fw->name << "/" << state.req.graph << "@" << std::hex
        << state.ds->store()->identity() << "/n" << fingerprint;
    return key.str();
}

/** DEADLINE_EXCEEDED vs CANCELLED for a node that stopped early, by the
 *  same rule the query path uses: an expired deadline wins unless the
 *  caller cancelled the plan. */
Status
classify_node_cancel(const PlanState& state, std::int64_t deadline_ns)
{
    if (deadline_ns != 0 && Timer::now_ns() >= deadline_ns &&
        !state.token->requested())
        return Status(StatusCode::kDeadlineExceeded,
                      "plan node deadline of " +
                          std::to_string(state.req.node_deadline_ms) +
                          " ms exceeded");
    return Status(StatusCode::kCancelled, "plan cancelled by caller");
}

/** Trace ids render as fixed-width hex, matching the query records. */
std::string
plan_trace_hex(std::uint64_t trace_id)
{
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(trace_id));
    return std::string(hex);
}

} // namespace

StatusOr<Server::PlanHandle>
Server::submit_plan(PlanRequest request)
{
    const harness::Framework* fw =
        detail::find_framework(frameworks_, request.framework);
    if (fw == nullptr)
        return Status(StatusCode::kInvalidInput,
                      "unknown framework: " + request.framework);
    std::shared_ptr<const harness::Dataset> ds;
    for (const auto& candidate : suite_.datasets) {
        if (candidate->name == request.graph) {
            ds = candidate;
            break;
        }
    }
    if (ds == nullptr)
        return Status(StatusCode::kInvalidInput,
                      "unknown graph: " + request.graph);
    if (request.plan.empty())
        return Status(StatusCode::kInvalidInput, "empty plan");
    const Status valid = request.plan.validate();
    if (!valid.is_ok())
        return valid;
    // Source bounds depend on the graph, which validate() cannot know;
    // checked here so a bad plan fails at submit, not mid-execution.
    const vid_t n = ds->g().num_vertices();
    for (const plan::Node& node : request.plan.nodes()) {
        for (const vid_t s : node.sources) {
            if (s < 0 || s >= n)
                return Status(StatusCode::kInvalidInput,
                              "plan source " + std::to_string(s) +
                                  " out of range for graph " +
                                  request.graph);
        }
    }

    auto state = std::make_shared<PlanState>();
    state->req = std::move(request);
    if (state->req.trace_id == 0)
        state->req.trace_id = mint_trace_id();
    state->req.width = std::clamp(state->req.width, 1, lane_budget_);
    state->fw = fw;
    state->ds = std::move(ds);
    state->gate = lane_gate_;
    state->submit_ns = Timer::now_ns();
    const int size = state->req.plan.size();
    state->node_tokens.reserve(static_cast<std::size_t>(size));
    for (int i = 0; i < size; ++i)
        state->node_tokens.push_back(
            std::make_shared<support::CancelToken>());
    state->node_results.resize(static_cast<std::size_t>(size));
    state->node_generations.assign(static_cast<std::size_t>(size), 0);

    {
        // plan_mu_ spans the shutdown check AND the runner insertion so
        // shutdown()'s final reap (which also takes plan_mu_) cannot slip
        // between them and orphan a never-joined driver thread.
        std::lock_guard<std::mutex> plan_lock(plan_mu_);
        {
            std::lock_guard<std::mutex> lock(queue_mu_);
            if (shutdown_)
                return Status(StatusCode::kResourceExhausted,
                              "server is shut down");
        }
        // Bound the runner list: settled drivers join instantly.
        for (auto it = plan_runners_.begin();
             it != plan_runners_.end();) {
            bool finished;
            {
                std::lock_guard<std::mutex> lock(it->state->mu);
                finished = it->state->done;
            }
            if (finished) {
                it->thread.join();
                it = plan_runners_.erase(it);
            } else {
                ++it;
            }
        }
        PlanRunner runner;
        runner.state = state;
        runner.thread =
            std::thread([this, state] { plan_driver(state); });
        plan_runners_.push_back(std::move(runner));
    }

    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++counters_.plans_submitted;
        counters_.plan_nodes += static_cast<std::uint64_t>(size);
    }
    if (tm_ != nullptr) {
        tm_->plans_submitted->inc();
        tm_->plan_nodes->inc(static_cast<std::uint64_t>(size));
        tm_->plan_inflight->add(1);
    }
    return PlanHandle(state);
}

StatusOr<PlanResult>
Server::run_plan(const PlanRequest& request)
{
    StatusOr<PlanHandle> handle = submit_plan(request);
    if (!handle.is_ok())
        return handle.status();
    return handle.value().wait();
}

void
Server::plan_driver(const std::shared_ptr<PlanState>& state)
{
    const plan::Plan& plan = state->req.plan;
    const std::vector<std::vector<int>> waves = plan.waves();
    Status status;
    for (const std::vector<int>& wave : waves) {
        if (!status.is_ok() || state->token->requested())
            break;
        if (wave.size() == 1) {
            plan_run_node(*state, wave[0]);
        } else {
            std::vector<std::thread> threads;
            threads.reserve(wave.size());
            for (const int id : wave)
                threads.emplace_back(
                    [this, &state, id] { plan_run_node(*state, id); });
            for (std::thread& t : threads)
                t.join();
        }
        for (const int id : wave) {
            const PlanNodeResult& node =
                state->node_results[static_cast<std::size_t>(id)];
            if (!node.status.is_ok() && status.is_ok())
                status = Status(
                    node.status.code(),
                    "plan node " + std::to_string(id) + " (" +
                        plan::to_string(
                            plan.nodes()[static_cast<std::size_t>(id)]
                                .op) +
                        "): " + node.status.message());
        }
    }
    if (status.is_ok() && state->token->requested())
        status =
            Status(StatusCode::kCancelled, "plan cancelled by caller");
    // Nodes never reached (waves after a failure or cancel) are marked
    // explicitly so callers can tell "skipped" from "succeeded": a node
    // that ran always carries a value or a non-ok status.
    for (PlanNodeResult& node : state->node_results) {
        if (node.status.is_ok() && node.value == nullptr)
            node.status = Status(StatusCode::kCancelled,
                                 "not run: plan stopped early");
    }

    PlanResult result;
    result.trace_id = state->req.trace_id;
    for (int id = 0; id < plan.size(); ++id) {
        const PlanNodeResult& node =
            state->node_results[static_cast<std::size_t>(id)];
        // Leaders (and only leaders) accumulate execute time; hits and
        // followers answer without running anything.
        const bool ran = node.execute_seconds > 0;
        result.executed += ran ? 1 : 0;
        result.cache_hits += node.cache_hit ? 1 : 0;
        result.shared += node.shared_execution ? 1 : 0;
        if (node.status.is_ok() && node.value != nullptr) {
            const std::uint64_t gen =
                state->node_generations[static_cast<std::size_t>(id)];
            result.generation = result.generation == 0
                                    ? gen
                                    : std::min(result.generation, gen);
        }
        if (ran && node.status.is_ok()) {
            int sweeps = 0;
            int sources = 0;
            fusion_stats(plan.nodes()[static_cast<std::size_t>(id)],
                         sweeps, sources);
            result.fused_sweeps += sweeps;
            result.sources_fused += sources;
        }
    }
    const std::int64_t done_ns = Timer::now_ns();
    result.service_seconds =
        static_cast<double>(done_ns - state->submit_ns) * 1e-9;
    result.nodes = state->node_results;

    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++counters_.plans_completed;
        if (!status.is_ok())
            ++counters_.plans_failed;
        counters_.plan_nodes_executed +=
            static_cast<std::uint64_t>(result.executed);
        counters_.plan_node_cache_hits +=
            static_cast<std::uint64_t>(result.cache_hits);
        counters_.plan_nodes_shared +=
            static_cast<std::uint64_t>(result.shared);
        counters_.plan_fused_sweeps +=
            static_cast<std::uint64_t>(result.fused_sweeps);
        counters_.plan_sources_fused +=
            static_cast<std::uint64_t>(result.sources_fused);
    }
    if (tm_ != nullptr) {
        tm_->plans_completed->inc();
        if (!status.is_ok())
            tm_->plans_failed->inc();
        tm_->plan_nodes_executed->inc(
            static_cast<std::uint64_t>(result.executed));
        tm_->plan_node_cache_hits->inc(
            static_cast<std::uint64_t>(result.cache_hits));
        tm_->plan_nodes_shared->inc(
            static_cast<std::uint64_t>(result.shared));
        tm_->plan_fused_sweeps->inc(
            static_cast<std::uint64_t>(result.fused_sweeps));
        tm_->plan_sources_fused->inc(
            static_cast<std::uint64_t>(result.sources_fused));
        tm_->plan_inflight->add(-1);
        tm_->plan_service_ns->record(static_cast<std::uint64_t>(
            std::max<std::int64_t>(0, done_ns - state->submit_ns)));
    }
    {
        std::lock_guard<std::mutex> lock(state->mu);
        state->status = status;
        state->result = std::move(result);
        state->done = true;
    }
    state->cv.notify_all();
    write_plan_record(*state);
}

void
Server::plan_run_node(PlanState& state, int id)
{
    const plan::Plan& plan = state.req.plan;
    const plan::Node& node = plan.nodes()[static_cast<std::size_t>(id)];
    PlanNodeResult& out =
        state.node_results[static_cast<std::size_t>(id)];
    const support::CancelToken& node_token =
        *state.node_tokens[static_cast<std::size_t>(id)];
    const std::int64_t start_ns = Timer::now_ns();
    const std::int64_t deadline_ns =
        state.req.node_deadline_ms > 0
            ? start_ns +
                  static_cast<std::int64_t>(state.req.node_deadline_ms) *
                      1'000'000
            : 0;
    if (deadline_ns != 0)
        deadlines_.arm(deadline_ns,
                       state.node_tokens[static_cast<std::size_t>(id)]);

    // Inputs come straight from upstream slots: earlier waves settled
    // before this node was scheduled, and ResultValue IS plan::Value, so
    // cached payloads feed the executor without a copy.
    std::vector<const plan::Value*> inputs;
    inputs.reserve(node.inputs.size());
    std::uint64_t input_generation = 0; // 0 = leaf node (no inputs)
    for (const int input : node.inputs) {
        const PlanNodeResult& upstream =
            state.node_results[static_cast<std::size_t>(input)];
        if (!upstream.status.is_ok() || upstream.value == nullptr) {
            out.status = Status(StatusCode::kCancelled,
                                "not run: input node " +
                                    std::to_string(input) + " failed");
            return;
        }
        inputs.push_back(upstream.value.get());
        const std::uint64_t gen =
            state.node_generations[static_cast<std::size_t>(input)];
        input_generation = input_generation == 0
                               ? gen
                               : std::min(input_generation, gen);
    }

    const std::string key =
        make_plan_node_key(state, plan.fingerprint(id));
    ResultCache::Lookup lookup =
        cache_.lookup_or_join(key, state.ds->store()->generation());
    switch (lookup.role) {
      case ResultCache::Role::kHit: {
          out.value = std::move(lookup.value);
          out.fingerprint = lookup.fingerprint;
          out.cache_hit = true;
          state.node_generations[static_cast<std::size_t>(id)] =
              lookup.generation;
          return;
      }
      case ResultCache::Role::kFollower: {
          // Same join discipline as wait_for_leader: short polls, exits
          // on the plan's cancel or this node's deadline (the deadline
          // timer raises the node token).
          ResultCache::Inflight& flight = *lookup.flight;
          std::unique_lock<std::mutex> lock(flight.mu);
          while (!flight.done) {
              if (state.token->requested() || node_token.requested()) {
                  out.status = classify_node_cancel(state, deadline_ns);
                  return;
              }
              flight.cv.wait_for(lock, std::chrono::milliseconds(2));
          }
          if (flight.status.is_ok()) {
              out.value = flight.value;
              out.fingerprint = flight.fingerprint;
              out.shared_execution = true;
              state.node_generations[static_cast<std::size_t>(id)] =
                  flight.generation;
              return;
          }
          switch (flight.status.code()) {
            case StatusCode::kTimeout:
            case StatusCode::kDeadlineExceeded:
            case StatusCode::kCancelled:
              out.status = Status(
                  StatusCode::kCancelled,
                  "single-flight leader abandoned; safe to retry");
              return;
            default:
              out.status = flight.status;
              return;
          }
      }
      case ResultCache::Role::kLeader:
        break;
    }

    // Leader: charge this node's lanes, pin the generation, execute,
    // publish.  publish() runs on every path out of this block — a
    // leader that never publishes would hang its followers.
    const int width = node_width(node, state.req.width);
    if (!plan_acquire_lanes(state, node_token, deadline_ns, width)) {
        out.status = classify_node_cancel(state, deadline_ns);
        cache_.publish(key, lookup.flight, out.status, nullptr, 0, 0);
        return;
    }
    const std::uint64_t exec_generation =
        state.ds->store()->generation();
    Status status;
    std::shared_ptr<const ResultValue> value;
    std::uint64_t fingerprint = 0;
    const std::int64_t exec_begin = Timer::now_ns();
    try {
        support::ScopedCancelToken scope(
            state.node_tokens[static_cast<std::size_t>(id)].get());
        par::LaneLease lease(width);
        support::FaultInjector::global().at("serve.plan.node");
        support::check_cancelled();
        plan::Context ctx{state.ds.get(), state.fw, state.req.mode};
        StatusOr<plan::Value> produced =
            plan::execute_node(plan, id, inputs, ctx);
        if (produced.is_ok()) {
            plan::Value v = std::move(produced).value();
            fingerprint = result_fingerprint(v);
            value = std::make_shared<const ResultValue>(std::move(v));
        } else {
            status = produced.status();
        }
    } catch (...) {
        status = support::current_exception_status();
    }
    if (status.code() == StatusCode::kTimeout)
        status = classify_node_cancel(state, deadline_ns);
    // An answer derived from pre-compaction inputs is tagged with the
    // inputs' generation: the entry stops being a fresh hit once the
    // store moves on, exactly like a pre-mutation query entry.
    const std::uint64_t generation =
        input_generation == 0
            ? exec_generation
            : std::min(exec_generation, input_generation);
    cache_.publish(key, lookup.flight, status, value, fingerprint,
                   generation);
    const std::int64_t exec_ns = Timer::now_ns() - exec_begin;
    release_lanes(width);
    out.status = status;
    out.execute_seconds =
        static_cast<double>(std::max<std::int64_t>(1, exec_ns)) * 1e-9;
    if (status.is_ok()) {
        out.value = std::move(value);
        out.fingerprint = fingerprint;
        state.node_generations[static_cast<std::size_t>(id)] = generation;
    }
    if (tm_ != nullptr)
        tm_->plan_node_execute_ns->record(static_cast<std::uint64_t>(
            std::max<std::int64_t>(0, exec_ns)));
}

bool
Server::plan_acquire_lanes(const PlanState& state,
                           const support::CancelToken& node_token,
                           std::int64_t deadline_ns, int width)
{
    detail::LaneGate& gate = *state.gate;
    std::unique_lock<std::mutex> lock(gate.mu);
    for (;;) {
        if (state.token->requested() || node_token.requested())
            return false;
        if (deadline_ns != 0 && Timer::now_ns() >= deadline_ns)
            return false;
        if (gate.in_use + width <= lane_budget_) {
            gate.in_use += width;
            if (tm_ != nullptr)
                tm_->lanes_in_use->set(gate.in_use);
            return true;
        }
        // Same argument as acquire_lanes: budget holders always finish,
        // so the wait terminates; PlanHandle::cancel() notifies the
        // gate, and a node deadline bounds the wait when one is set.
        if (deadline_ns == 0) {
            gate.cv.wait(lock);
        } else {
            const std::int64_t remaining_ns =
                deadline_ns - Timer::now_ns();
            if (remaining_ns > 0)
                gate.cv.wait_for(lock,
                                 std::chrono::nanoseconds(remaining_ns));
        }
    }
}

void
Server::write_plan_record(detail::PlanState& state)
{
    if (options_.metrics_path.empty())
        return;
    std::ostringstream line;
    {
        std::lock_guard<std::mutex> lock(state.mu);
        const PlanResult& r = state.result;
        line << "{\"kind\":\"serve.plan\",\"trace\":\""
             << plan_trace_hex(r.trace_id) << "\",\"status\":\""
             << support::to_string(state.status.code())
             << "\",\"graph\":\"" << support::json_escape(state.req.graph)
             << "\",\"framework\":\""
             << support::json_escape(state.fw->name)
             << "\",\"nodes\":" << state.req.plan.size()
             << ",\"executed\":" << r.executed
             << ",\"cache_hits\":" << r.cache_hits
             << ",\"shared\":" << r.shared
             << ",\"fused_sweeps\":" << r.fused_sweeps
             << ",\"sources_fused\":" << r.sources_fused
             << ",\"service_ms\":"
             << support::json_double(r.service_seconds * 1e3)
             << ",\"generation\":" << r.generation
             << ",\"t_ns\":" << Timer::now_ns() << "}";
    }
    std::lock_guard<std::mutex> lock(metrics_mu_);
    std::ofstream out(options_.metrics_path, std::ios::app);
    if (out)
        out << line.str() << "\n";
}

void
Server::reap_plan_runners(bool all)
{
    std::lock_guard<std::mutex> plan_lock(plan_mu_);
    for (auto it = plan_runners_.begin(); it != plan_runners_.end();) {
        bool finished = all;
        if (!all) {
            std::lock_guard<std::mutex> lock(it->state->mu);
            finished = it->state->done;
        }
        if (finished) {
            it->thread.join();
            it = plan_runners_.erase(it);
        } else {
            ++it;
        }
    }
}

StatusOr<PlanResult>
Server::PlanHandle::wait() const
{
    GM_ASSERT(state_ != nullptr, "wait() on an empty serve::PlanHandle");
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [this] { return state_->done; });
    if (!state_->status.is_ok())
        return state_->status;
    return state_->result;
}

void
Server::PlanHandle::cancel() const
{
    GM_ASSERT(state_ != nullptr,
              "cancel() on an empty serve::PlanHandle");
    state_->token->request();
    for (const auto& token : state_->node_tokens)
        token->request();
    if (state_->gate != nullptr)
        state_->gate->cv.notify_all();
}

} // namespace gm::serve
