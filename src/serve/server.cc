#include "gm/serve/server.hh"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <fstream>
#include <sstream>

#include "gm/obs/metrics.hh"
#include "gm/par/thread_pool.hh"
#include "gm/support/fault_injector.hh"
#include "gm/support/hash.hh"
#include "gm/support/timer.hh"
#include "gm/support/watchdog.hh"

namespace gm::serve
{

using support::Status;
using support::StatusCode;
using support::StatusOr;

namespace detail
{

/** Everything one submitted request carries through the pipeline.  Heap-
 *  owned (shared by the Handle, the queue, and the worker), so a caller
 *  abandoning its Handle never invalidates an executing request. */
struct RequestState
{
    Request req;
    const harness::Framework* fw = nullptr;
    std::shared_ptr<const harness::Dataset> ds;
    std::string cache_key;

    std::shared_ptr<support::CancelToken> token =
        std::make_shared<support::CancelToken>();
    std::int64_t submit_ns = 0;
    std::int64_t deadline_ns = 0; ///< absolute Timer::now_ns(); 0 = none
    std::atomic<bool> user_cancelled{false};

    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status;
    QueryResult result;
};

} // namespace detail

using detail::RequestState;

namespace
{

/** Match a framework by display name or lowercase alias. */
const harness::Framework*
find_framework(const std::vector<harness::Framework>& frameworks,
               const std::string& name)
{
    std::string lower = name;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    for (const auto& fw : frameworks) {
        std::string fw_lower = fw.name;
        std::transform(fw_lower.begin(), fw_lower.end(), fw_lower.begin(),
                       [](unsigned char c) { return std::tolower(c); });
        if (name == fw.name || lower == fw_lower)
            return &fw;
    }
    return nullptr;
}

bool
kernel_uses_source(harness::Kernel kernel)
{
    return kernel == harness::Kernel::kBFS ||
           kernel == harness::Kernel::kSSSP ||
           kernel == harness::Kernel::kBC;
}

/**
 * Cache identity of a request: the cell coordinates with the graph pinned
 * by content fingerprint (two suites at different scales never collide),
 * plus every parameter that changes the answer.  Sourceless kernels
 * normalize source to 0 so "PR from 3" and "PR from 7" dedupe.
 */
std::string
make_cache_key(const Request& req, const harness::Framework& fw,
               const harness::Dataset& ds)
{
    const vid_t source = kernel_uses_source(req.kernel) ? req.source : 0;
    std::ostringstream key;
    key << harness::to_string(req.mode) << "/" << fw.name << "/"
        << harness::to_string(req.kernel) << "/" << req.graph << "@"
        << std::hex << ds.store()->fingerprint() << std::dec << "/d"
        << ds.delta << "/s" << source;
    return key.str();
}

/** Run the kernel for @p state on the calling thread. */
ResultValue
execute_kernel(const RequestState& state)
{
    const harness::Framework& fw = *state.fw;
    const harness::Dataset& ds = *state.ds;
    const Request& req = state.req;
    switch (req.kernel) {
      case harness::Kernel::kBFS:
        return fw.bfs(ds, req.source, req.mode);
      case harness::Kernel::kSSSP:
        return fw.sssp(ds, req.source, req.mode);
      case harness::Kernel::kCC:
        return fw.cc(ds, req.mode);
      case harness::Kernel::kPR:
        return fw.pr(ds, req.mode);
      case harness::Kernel::kBC:
        return fw.bc(ds, std::vector<vid_t>{req.source}, req.mode);
      case harness::Kernel::kTC:
        return fw.tc(ds, req.mode);
    }
    throw support::Error(StatusCode::kInvalidInput, "unknown kernel");
}

} // namespace

std::size_t
result_bytes(const ResultValue& value)
{
    return std::visit(
        [](const auto& v) -> std::size_t {
            using T = std::decay_t<decltype(v)>;
            if constexpr (std::is_same_v<T, std::uint64_t>)
                return sizeof(std::uint64_t);
            else
                return v.size() * sizeof(typename T::value_type) +
                       sizeof(T);
        },
        value);
}

std::uint64_t
result_fingerprint(const ResultValue& value)
{
    support::Fnv1a h;
    h.update_value(static_cast<std::uint64_t>(value.index()));
    std::visit(
        [&h](const auto& v) {
            using T = std::decay_t<decltype(v)>;
            if constexpr (std::is_same_v<T, std::uint64_t>)
                h.update_value(v);
            else
                h.update_vector(v);
        },
        value);
    return h.digest();
}

Server::Server(harness::DatasetSuite suite,
               std::vector<harness::Framework> frameworks,
               ServerOptions options)
    : suite_(std::move(suite)),
      frameworks_(std::move(frameworks)),
      options_(options),
      cache_(options.cache_capacity_bytes)
{
    GM_ASSERT(options_.workers >= 1, "server needs at least one worker");
    GM_ASSERT(options_.queue_capacity >= 1,
              "server needs a non-empty admission queue");
    workers_.reserve(static_cast<std::size_t>(options_.workers));
    for (int i = 0; i < options_.workers; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

Server::~Server() { shutdown(); }

void
Server::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(queue_mu_);
        if (shutdown_)
            return;
        shutdown_ = true;
    }
    queue_cv_.notify_all();
    for (auto& worker : workers_)
        worker.join();
    workers_.clear();
}

StatusOr<Server::Handle>
Server::submit(Request request)
{
    const harness::Framework* fw =
        find_framework(frameworks_, request.framework);
    if (fw == nullptr)
        return Status(StatusCode::kInvalidInput,
                      "unknown framework: " + request.framework);

    std::shared_ptr<const harness::Dataset> ds;
    for (const auto& candidate : suite_.datasets) {
        if (candidate->name == request.graph) {
            ds = candidate;
            break;
        }
    }
    if (ds == nullptr)
        return Status(StatusCode::kInvalidInput,
                      "unknown graph: " + request.graph);

    if (kernel_uses_source(request.kernel) &&
        (request.source < 0 || request.source >= ds->g().num_vertices()))
        return Status(StatusCode::kInvalidInput,
                      "source " + std::to_string(request.source) +
                          " out of range for graph " + request.graph);

    auto state = std::make_shared<RequestState>();
    state->req = std::move(request);
    state->fw = fw;
    state->ds = ds;
    state->cache_key = make_cache_key(state->req, *fw, *ds);
    state->submit_ns = Timer::now_ns();
    if (state->req.deadline_ms > 0)
        state->deadline_ns =
            state->submit_ns +
            static_cast<std::int64_t>(state->req.deadline_ms) * 1'000'000;

    {
        std::lock_guard<std::mutex> lock(queue_mu_);
        if (shutdown_)
            return Status(StatusCode::kResourceExhausted,
                          "server is shut down");
        if (queue_.size() >= options_.queue_capacity) {
            shed_.fetch_add(1, std::memory_order_relaxed);
            return Status(StatusCode::kResourceExhausted,
                          "admission queue full (capacity " +
                              std::to_string(options_.queue_capacity) +
                              ")");
        }
        queue_.push_back(state);
    }
    queue_cv_.notify_one();
    submitted_.fetch_add(1, std::memory_order_relaxed);
    if (state->deadline_ns != 0)
        deadlines_.arm(state->deadline_ns, state->token);
    return Handle(state);
}

StatusOr<QueryResult>
Server::query(const Request& request)
{
    auto handle = submit(request);
    if (!handle.is_ok())
        return handle.status();
    return std::move(handle).value().wait();
}

void
Server::worker_loop()
{
    for (;;) {
        std::shared_ptr<RequestState> state;
        {
            std::unique_lock<std::mutex> lock(queue_mu_);
            queue_cv_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
            if (queue_.empty())
                return; // shutdown, queue drained
            state = queue_.front();
            queue_.pop_front();
        }
        process(state);
    }
}

Status
Server::classify_cancel(const RequestState& state) const
{
    if (state.deadline_ns != 0 && Timer::now_ns() >= state.deadline_ns &&
        !state.user_cancelled.load(std::memory_order_relaxed))
        return Status(StatusCode::kDeadlineExceeded,
                      "deadline of " +
                          std::to_string(state.req.deadline_ms) +
                          " ms exceeded");
    return Status(StatusCode::kCancelled, "cancelled by caller");
}

void
Server::process(const std::shared_ptr<RequestState>& state)
{
    const std::int64_t dequeue_ns = Timer::now_ns();
    QueryResult result;
    result.queue_seconds =
        static_cast<double>(dequeue_ns - state->submit_ns) * 1e-9;

    // Expired or cancelled while still queued: answer without executing.
    if (state->user_cancelled.load(std::memory_order_relaxed) ||
        (state->deadline_ns != 0 && dequeue_ns >= state->deadline_ns)) {
        complete(state, classify_cancel(*state), std::move(result));
        return;
    }

    obs::TraceSession session;
    session.start_detached();
    Status status;
    {
        obs::SessionBinding binding(session.gen());
        obs::record_span("serve.queue_wait", state->submit_ns, dequeue_ns);

        ResultCache::Lookup lookup =
            cache_.lookup_or_join(state->cache_key);
        switch (lookup.role) {
          case ResultCache::Role::kHit: {
              obs::counter_add("serve.cache_hit", 1);
              cache_hits_.fetch_add(1, std::memory_order_relaxed);
              result.value = std::move(lookup.value);
              result.fingerprint = lookup.fingerprint;
              result.cache_hit = true;
              break;
          }
          case ResultCache::Role::kFollower: {
              single_flight_joins_.fetch_add(1, std::memory_order_relaxed);
              const std::int64_t join_begin = Timer::now_ns();
              status = wait_for_leader(*state, *lookup.flight, result);
              obs::record_span("serve.join_wait", join_begin,
                               Timer::now_ns());
              break;
          }
          case ResultCache::Role::kLeader: {
              executions_.fetch_add(1, std::memory_order_relaxed);
              const std::int64_t exec_begin = Timer::now_ns();
              std::shared_ptr<const ResultValue> value;
              std::uint64_t fingerprint = 0;
              try {
                  // Serial execution on this worker thread: concurrency
                  // comes from the worker pool, not from the kernel, so
                  // results are bit-identical to a direct serial run and
                  // N requests never contend for the shared ThreadPool.
                  support::ScopedCancelToken scope(state->token.get());
                  par::SerialRegion serial;
                  obs::ScopedSpan span("serve.execute");
                  support::FaultInjector::global().at("serve.execute");
                  support::check_cancelled();
                  ResultValue v = execute_kernel(*state);
                  fingerprint = result_fingerprint(v);
                  value = std::make_shared<const ResultValue>(std::move(v));
              } catch (...) {
                  status = support::current_exception_status();
              }
              // Cooperative unwinds surface as the watchdog's kTimeout;
              // re-express them in service terms.
              if (status.code() == StatusCode::kTimeout)
                  status = classify_cancel(*state);
              cache_.publish(state->cache_key, lookup.flight, status,
                             value, fingerprint);
              if (status.is_ok()) {
                  result.value = std::move(value);
                  result.fingerprint = fingerprint;
              }
              result.execute_seconds =
                  static_cast<double>(Timer::now_ns() - exec_begin) * 1e-9;
              break;
          }
        }
    }
    session.stop();
    if (!options_.metrics_path.empty())
        write_metrics_record(*state, session);
    complete(state, std::move(status), std::move(result));
}

Status
Server::wait_for_leader(RequestState& state, ResultCache::Inflight& flight,
                        QueryResult& result)
{
    std::unique_lock<std::mutex> lock(flight.mu);
    while (!flight.done) {
        if (state.user_cancelled.load(std::memory_order_relaxed))
            return Status(StatusCode::kCancelled, "cancelled by caller");
        if (state.deadline_ns != 0 && Timer::now_ns() >= state.deadline_ns)
            return Status(StatusCode::kDeadlineExceeded,
                          "deadline of " +
                              std::to_string(state.req.deadline_ms) +
                              " ms exceeded while joined to an "
                              "in-flight execution");
        flight.cv.wait_for(lock, std::chrono::milliseconds(2));
    }
    if (flight.status.is_ok()) {
        result.value = flight.value;
        result.fingerprint = flight.fingerprint;
        result.shared_execution = true;
        return Status::ok();
    }
    switch (flight.status.code()) {
      case StatusCode::kTimeout:
      case StatusCode::kDeadlineExceeded:
      case StatusCode::kCancelled:
        // The leader was abandoned for reasons unrelated to the query
        // itself; this follower's answer was never computed.
        return Status(StatusCode::kCancelled,
                      "single-flight leader abandoned; safe to retry");
      default:
        // Deterministic failure: retrying the same query would repeat it.
        return flight.status;
    }
}

void
Server::complete(const std::shared_ptr<RequestState>& state, Status status,
                 QueryResult result)
{
    completed_.fetch_add(1, std::memory_order_relaxed);
    switch (status.code()) {
      case StatusCode::kOk:
        succeeded_.fetch_add(1, std::memory_order_relaxed);
        break;
      case StatusCode::kDeadlineExceeded:
        deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
        break;
      case StatusCode::kCancelled:
        cancelled_.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        failed_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    {
        std::lock_guard<std::mutex> lock(state->mu);
        result.service_seconds =
            static_cast<double>(Timer::now_ns() - state->submit_ns) * 1e-9;
        state->status = std::move(status);
        state->result = std::move(result);
        state->done = true;
    }
    state->cv.notify_all();
}

void
Server::write_metrics_record(const RequestState& state,
                             const obs::TraceSession& session)
{
    obs::MetricsRecord record;
    record.mode = harness::to_string(state.req.mode);
    record.framework = state.fw->name;
    record.kernel = harness::to_string(state.req.kernel);
    record.graph = state.req.graph;
    record.trial = 0;
    record.attempt = 1;
    record.metrics = obs::summarize(session);
    record.metrics.peak_bytes = state.ds->bytes_resident();
    const std::string line = obs::metrics_record_line(record);

    std::lock_guard<std::mutex> lock(metrics_mu_);
    std::ofstream out(options_.metrics_path, std::ios::app);
    if (out)
        out << line << "\n";
}

ServerStats
Server::stats() const
{
    ServerStats out;
    out.submitted = submitted_.load(std::memory_order_relaxed);
    out.shed = shed_.load(std::memory_order_relaxed);
    out.completed = completed_.load(std::memory_order_relaxed);
    out.succeeded = succeeded_.load(std::memory_order_relaxed);
    out.deadline_exceeded =
        deadline_exceeded_.load(std::memory_order_relaxed);
    out.cancelled = cancelled_.load(std::memory_order_relaxed);
    out.failed = failed_.load(std::memory_order_relaxed);
    out.executions = executions_.load(std::memory_order_relaxed);
    out.cache_hits = cache_hits_.load(std::memory_order_relaxed);
    out.single_flight_joins =
        single_flight_joins_.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(queue_mu_);
        out.queue_depth = queue_.size();
    }
    const ResultCache::Stats cache = cache_.stats();
    out.cache_entries = cache.entries;
    out.cache_bytes = cache.bytes;
    return out;
}

StatusOr<QueryResult>
Server::Handle::wait() const
{
    GM_ASSERT(state_ != nullptr, "wait() on an empty serve::Handle");
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [this] { return state_->done; });
    if (!state_->status.is_ok())
        return state_->status;
    return state_->result;
}

void
Server::Handle::cancel() const
{
    GM_ASSERT(state_ != nullptr, "cancel() on an empty serve::Handle");
    state_->user_cancelled.store(true, std::memory_order_relaxed);
    state_->token->request();
}

} // namespace gm::serve
