#include "gm/serve/server.hh"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

#include <cstdio>

#include "gm/dyn/incremental.hh"
#include "gm/obs/metrics.hh"
#include "gm/par/thread_pool.hh"
#include "gm/support/fault_injector.hh"
#include "gm/support/hash.hh"
#include "gm/support/json.hh"
#include "gm/support/rng.hh"
#include "gm/support/timer.hh"
#include "gm/support/watchdog.hh"
#include "gm/telemetry/exposition.hh"
#include "gm/telemetry/registry.hh"
#include "serve_internal.hh"

namespace gm::serve
{

using support::Status;
using support::StatusCode;
using support::StatusOr;

namespace detail
{

/**
 * Per-graph dynamic state, created lazily on the first mutate() for a
 * graph: the store's delta overlay plus the kernels the server maintains
 * across mutations.  CC and PageRank are global (sourceless) answers, so
 * one maintainer each covers the graph; BFS/SSSP maintenance is per
 * source and lives with callers that pin a source (bench/dyn_maintenance
 * exercises it).  Guarded by the server's dyn_mu_.
 */
struct DynState
{
    dyn::DynamicGraph graph;
    dyn::CCMaintainer cc;
    dyn::PageRankMaintainer pr;
    std::uint64_t batches = 0; ///< applied batches (compaction cadence)

    DynState(std::shared_ptr<store::GraphStore> store,
             const dyn::MaintainerOptions& opts)
        : graph(std::move(store)), cc(opts), pr({}, opts)
    {
        const dyn::GraphView view = graph.view();
        cc.rebuild(view);
        pr.rebuild(view);
    }
};

} // namespace detail

using detail::RequestState;

namespace
{

using detail::find_framework;

bool
kernel_uses_source(harness::Kernel kernel)
{
    return kernel == harness::Kernel::kBFS ||
           kernel == harness::Kernel::kSSSP ||
           kernel == harness::Kernel::kBC;
}

/**
 * Cache identity of a request: the cell coordinates with the graph pinned
 * by stable store identity (two suites at different scales never
 * collide), plus every parameter that changes the answer.  Sourceless
 * kernels normalize source to 0 so "PR from 3" and "PR from 7" dedupe.
 * Identity, not fingerprint: mutations install fresh CSR generations
 * without changing the key — the cache's generation tag decides whether
 * an entry under the key is still fresh.
 */
std::string
make_cache_key(const Request& req, const harness::Framework& fw,
               const harness::Dataset& ds)
{
    const vid_t source = kernel_uses_source(req.kernel) ? req.source : 0;
    std::ostringstream key;
    key << harness::to_string(req.mode) << "/" << fw.name << "/"
        << harness::to_string(req.kernel) << "/" << req.graph << "@"
        << std::hex << ds.store()->identity() << std::dec << "/d"
        << ds.delta << "/s" << source;
    return key.str();
}

/** Breaker identity: the unit that fails together.  Source and mode are
 *  deliberately excluded — a sick kernel is sick from every source. */
std::string
make_cell_key(const Request& req, const harness::Framework& fw)
{
    return fw.name + "/" + std::string(harness::to_string(req.kernel)) +
           "/" + req.graph;
}

/** Run the kernel for @p state on the calling thread. */
ResultValue
execute_kernel(const RequestState& state)
{
    const harness::Framework& fw = *state.fw;
    const harness::Dataset& ds = *state.ds;
    const Request& req = state.req;
    switch (req.kernel) {
      case harness::Kernel::kBFS:
        return fw.bfs(ds, req.source, req.mode);
      case harness::Kernel::kSSSP:
        return fw.sssp(ds, req.source, req.mode);
      case harness::Kernel::kCC:
        return fw.cc(ds, req.mode);
      case harness::Kernel::kPR:
        return fw.pr(ds, req.mode);
      case harness::Kernel::kBC:
        return fw.bc(ds, std::vector<vid_t>{req.source}, req.mode);
      case harness::Kernel::kTC:
        return fw.tc(ds, req.mode);
    }
    throw support::Error(StatusCode::kInvalidInput, "unknown kernel");
}

int
priority_class(Priority priority)
{
    return static_cast<int>(priority);
}

AdmissionOptions
make_admission_options(const ServerOptions& options)
{
    AdmissionOptions out;
    out.total_capacity = options.queue_capacity;
    out.workers = options.workers;
    const bool derive =
        options.class_capacity[0] == 0 && options.class_capacity[1] == 0 &&
        options.class_capacity[2] == 0;
    if (derive) {
        out.class_capacity = {
            options.queue_capacity,
            std::max<std::size_t>(1, options.queue_capacity / 2),
            std::max<std::size_t>(1, options.queue_capacity / 4)};
    } else {
        for (int i = 0; i < kPriorityClasses; ++i)
            out.class_capacity[static_cast<std::size_t>(i)] = std::max<
                std::size_t>(
                1, options.class_capacity[static_cast<std::size_t>(i)]);
    }
    return out;
}

} // namespace

std::size_t
result_bytes(const ResultValue& value)
{
    return plan::value_bytes(value);
}

std::uint64_t
result_fingerprint(const ResultValue& value)
{
    return plan::value_fingerprint(value);
}

Server::Server(harness::DatasetSuite suite,
               std::vector<harness::Framework> frameworks,
               ServerOptions options)
    : suite_(std::move(suite)),
      frameworks_(std::move(frameworks)),
      options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : support::Clock::system()),
      cache_(options.cache_capacity_bytes,
             options.cache_ttl_ms * 1'000'000, clock_),
      breaker_(options.breaker, clock_),
      retry_budget_(options.retry_budget_ratio, options.retry_budget_cap),
      admission_(make_admission_options(options)),
      slo_(options.slo)
{
    GM_ASSERT(options_.workers >= 1, "server needs at least one worker");
    GM_ASSERT(options_.queue_capacity >= 1,
              "server needs a non-empty admission queue");
    if (options_.enable_telemetry) {
        telemetry::Registry::global().enable();
        tm_ = std::make_unique<detail::ServeTelemetry>();
        retry_budget_.attach_gauge(tm_->retry_tokens);
    }
    // A random per-server base decorrelates trace ids across servers in
    // one process; the sequence keeps them unique within a server.
    trace_base_ =
        SplitMix64(static_cast<std::uint64_t>(Timer::now_ns()) ^
                   (reinterpret_cast<std::uintptr_t>(this) << 16))
            .next();
    if (options_.metrics_port >= 0) {
        listener_ = std::make_unique<telemetry::MetricsListener>(
            options_.metrics_port, [] {
                return telemetry::render_text(
                    telemetry::Registry::global().snapshot());
            });
        if (!listener_->status().is_ok()) {
            log_warn("serve: metrics listener failed: " +
                              listener_->status().message());
            listener_.reset();
        }
    }
    // Default budget: at least one lane per worker, so width-1 traffic
    // keeps the full workers-way request concurrency the pool provides
    // (as before this scheduler existed), and at least the ThreadPool
    // size so one wide request can use every core.
    lane_budget_ =
        options_.lane_budget >= 1
            ? options_.lane_budget
            : std::max(options_.workers,
                       par::ThreadPool::instance().num_threads());
    lane_gate_ = std::make_shared<detail::LaneGate>();
    workers_.reserve(static_cast<std::size_t>(options_.workers));
    for (int i = 0; i < options_.workers; ++i)
        workers_.emplace_back([this] { worker_loop(); });
    if (!options_.telemetry_path.empty())
        flusher_ = std::thread([this] { telemetry_flush_loop(); });
}

Server::~Server() { shutdown(); }

void
Server::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(queue_mu_);
        if (shutdown_)
            return;
        shutdown_ = true;
    }
    queue_cv_.notify_all();
    // Wake any leader blocked on the lane budget so it re-checks its
    // cancel/deadline state promptly.  Draining leaders that are still
    // live keep waiting — budget holders always finish, so the wait
    // terminates and the queue drains as documented.
    lane_gate_->cv.notify_all();
    for (auto& worker : workers_)
        worker.join();
    workers_.clear();
    // Plans drain like queries: drivers and their node threads always
    // finish (lane waits terminate because budget holders finish), so
    // joining them here completes every accepted plan before the
    // telemetry machinery below shuts down.
    reap_plan_runners(/*all=*/true);
    flush_breaker_transitions();
    {
        std::lock_guard<std::mutex> lock(flusher_mu_);
        flusher_stop_ = true;
    }
    flusher_cv_.notify_all();
    if (flusher_.joinable())
        flusher_.join();
    if (!options_.telemetry_path.empty()) {
        // Final snapshot so the stream's last line reflects shutdown
        // state even with a long flush interval.
        write_telemetry_snapshot();
        evaluate_slo(Timer::now_ns());
    }
    if (listener_ != nullptr)
        listener_->stop();
    if (options_.enable_telemetry)
        telemetry::Registry::global().disable();
}

StatusOr<Server::Handle>
Server::submit(Request request)
{
    const harness::Framework* fw =
        find_framework(frameworks_, request.framework);
    if (fw == nullptr)
        return Status(StatusCode::kInvalidInput,
                      "unknown framework: " + request.framework);

    std::shared_ptr<const harness::Dataset> ds;
    for (const auto& candidate : suite_.datasets) {
        if (candidate->name == request.graph) {
            ds = candidate;
            break;
        }
    }
    if (ds == nullptr)
        return Status(StatusCode::kInvalidInput,
                      "unknown graph: " + request.graph);

    if (kernel_uses_source(request.kernel) &&
        (request.source < 0 || request.source >= ds->g().num_vertices()))
        return Status(StatusCode::kInvalidInput,
                      "source " + std::to_string(request.source) +
                          " out of range for graph " + request.graph);

    auto state = std::make_shared<RequestState>();
    state->req = std::move(request);
    // Trace identity: minted here for bare submits; query() mints once
    // per logical request and reuses it across retries.
    if (state->req.trace_id == 0)
        state->req.trace_id = mint_trace_id();
    if (state->req.attempt <= 0)
        state->req.attempt = 1;
    // Width changes latency, never the answer (kernels are
    // order-deterministic), so it is clamped rather than validated and
    // stays out of the cache key.
    state->req.width = std::clamp(state->req.width, 1, lane_budget_);
    state->fw = fw;
    state->ds = ds;
    state->cache_key = make_cache_key(state->req, *fw, *ds);
    state->cell_key = make_cell_key(state->req, *fw);
    state->gate = lane_gate_;
    state->submit_ns = Timer::now_ns();
    if (state->req.deadline_ms > 0)
        state->deadline_ns =
            state->submit_ns +
            static_cast<std::int64_t>(state->req.deadline_ms) * 1'000'000;

    // Serves a refused request from the cache when policy allows, or
    // refuses it for real.  Returns the already-completed handle or the
    // refusal status.
    const auto refuse = [&](Status status,
                            bool fresh_ok) -> StatusOr<Handle> {
        QueryResult result;
        if ((state->req.allow_stale || fresh_ok) &&
            try_cache_fallback(*state, result) &&
            (result.degraded ? state->req.allow_stale : true)) {
            {
                std::lock_guard<std::mutex> lock(stats_mu_);
                ++counters_.submitted;
            }
            if (tm_ != nullptr)
                tm_->submitted->inc();
            write_refusal_record(*state, status, /*served_degraded=*/true);
            complete(state, Status::ok(), std::move(result));
            return Handle(state);
        }
        {
            std::lock_guard<std::mutex> lock(stats_mu_);
            if (status.code() == StatusCode::kUnavailable)
                ++counters_.unavailable;
            else
                ++counters_.shed;
        }
        if (tm_ != nullptr) {
            if (status.code() == StatusCode::kUnavailable)
                tm_->unavailable->inc();
            else
                tm_->shed[priority_class(state->req.priority)]->inc();
        }
        write_refusal_record(*state, status, /*served_degraded=*/false);
        // A real refusal is an unanswered request from the SLO's point
        // of view; degraded serves are scored in complete().
        observe_slo(/*answered=*/false, /*fresh=*/false, /*latency_ns=*/0);
        return status;
    };

    // Chaos site: an injected admission fault sheds the request exactly
    // as a full queue would (degraded fallback applies); a delay fault
    // slows the submit path.
    try {
        support::FaultInjector::global().at("serve.admission");
    } catch (const support::FaultInjectedError&) {
        return refuse(Status(StatusCode::kResourceExhausted,
                             "injected fault at serve.admission"),
                      /*fresh_ok=*/false);
    }

    // Circuit breaker: fast-fail a sick cell instead of queueing into
    // it.  A fresh cached result is still served (no execution needed);
    // half-open grants pass through as probes.
    if (options_.enable_breaker) {
        switch (breaker_.admit(state->cell_key)) {
          case CircuitBreaker::Gate::kAllow:
            break;
          case CircuitBreaker::Gate::kProbe:
            state->probe = true;
            break;
          case CircuitBreaker::Gate::kReject:
            return refuse(
                Status(StatusCode::kUnavailable,
                       "circuit breaker open for cell " + state->cell_key),
                /*fresh_ok=*/true);
        }
    }

    AdmissionController::Decision decision;
    {
        std::lock_guard<std::mutex> lock(queue_mu_);
        if (shutdown_) {
            breaker_.release(state->cell_key, state->probe);
            return Status(StatusCode::kResourceExhausted,
                          "server is shut down");
        }
        AdmissionController::Ticket ticket;
        ticket.priority = state->req.priority;
        ticket.deadline_ns = state->deadline_ns;
        ticket.payload = state;
        decision = admission_.try_admit(std::move(ticket),
                                        state->submit_ns);
        if (decision == AdmissionController::Decision::kAdmitted) {
            // Counted while still holding queue_mu_: a worker cannot pop
            // (and decrement queue_depth) until the queue lock is
            // released, so no snapshot can see the pop before the push.
            std::lock_guard<std::mutex> stats_lock(stats_mu_);
            ++counters_.submitted;
            ++counters_.queue_depth;
        }
    }
    if (decision == AdmissionController::Decision::kAdmitted &&
        tm_ != nullptr) {
        const int cls = priority_class(state->req.priority);
        tm_->submitted->inc();
        tm_->accepted[cls]->inc();
        tm_->queue_depth[cls]->add(1);
    }
    if (decision != AdmissionController::Decision::kAdmitted) {
        breaker_.release(state->cell_key, state->probe);
        state->probe = false;
        std::string reason;
        switch (decision) {
          case AdmissionController::Decision::kQueueFull:
            reason = "admission queue full (capacity " +
                     std::to_string(options_.queue_capacity) + ")";
            break;
          case AdmissionController::Decision::kClassFull:
            reason = std::string("admission quota for class '") +
                     to_string(state->req.priority) + "' is full";
            break;
          default:
            reason = "deadline of " +
                     std::to_string(state->req.deadline_ms) +
                     " ms is infeasible at the current queue drain rate";
            break;
        }
        if (decision ==
            AdmissionController::Decision::kDeadlineInfeasible) {
            {
                std::lock_guard<std::mutex> lock(stats_mu_);
                ++counters_.infeasible;
            }
            if (tm_ != nullptr)
                tm_->infeasible->inc();
        }
        return refuse(Status(StatusCode::kResourceExhausted, reason),
                      /*fresh_ok=*/false);
    }

    queue_cv_.notify_one();
    if (state->deadline_ns != 0)
        deadlines_.arm(state->deadline_ns, state->token);
    return Handle(state);
}

StatusOr<QueryResult>
Server::query(const Request& request)
{
    return query(request, options_.retry);
}

StatusOr<QueryResult>
Server::query(const Request& request, const RetryPolicy& policy)
{
    retry_budget_.deposit();
    // One trace id per logical query: every attempt (including refused
    // ones) stamps the same id into its JSONL records, with `attempt`
    // disambiguating them.
    Request attempt_req = request;
    if (attempt_req.trace_id == 0)
        attempt_req.trace_id = mint_trace_id();
    int attempt = 1;
    for (;;) {
        Status status;
        attempt_req.attempt = attempt;
        auto handle = submit(attempt_req);
        if (handle.is_ok()) {
            auto result = std::move(handle).value().wait();
            if (result.is_ok())
                return result;
            status = result.status();
        } else {
            status = handle.status();
        }
        if (attempt >= policy.max_attempts ||
            !retryable_status(status.code()))
            return status;
        if (!retry_budget_.withdraw()) {
            {
                std::lock_guard<std::mutex> lock(stats_mu_);
                ++counters_.retry_denied;
            }
            if (tm_ != nullptr)
                tm_->retry_denied->inc();
            return status;
        }
        ++attempt;
        {
            std::lock_guard<std::mutex> lock(stats_mu_);
            ++counters_.retries;
        }
        if (tm_ != nullptr)
            tm_->retries->inc();
        const std::int64_t ms = backoff_ms(policy, attempt);
        if (ms > 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    }
}

StatusOr<MutationOutcome>
Server::mutate(const std::string& graph, const dyn::MutationBatch& batch)
{
    std::shared_ptr<const harness::Dataset> ds;
    for (const auto& candidate : suite_.datasets) {
        if (candidate->name == graph) {
            ds = candidate;
            break;
        }
    }
    if (ds == nullptr)
        return Status(StatusCode::kInvalidInput,
                      "unknown graph: " + graph);
    {
        std::lock_guard<std::mutex> lock(queue_mu_);
        if (shutdown_)
            return Status(StatusCode::kResourceExhausted,
                          "server is shut down");
    }

    const std::int64_t begin_ns = Timer::now_ns();
    MutationOutcome outcome;
    outcome.requested = batch.size();

    // Exclusive with kernel execution (leaders read the store's base by
    // plain reference) and, via dyn_mu_, with other mutations.
    acquire_all_lanes();
    Status status = Status::ok();
    std::uint64_t generation_peak = 0;
    double overlay_bytes = 0;
    {
        std::lock_guard<std::mutex> lock(dyn_mu_);
        auto it = dyn_.find(graph);
        if (it == dyn_.end())
            it = dyn_.emplace(graph,
                              std::make_unique<detail::DynState>(
                                  ds->store(),
                                  dyn::MaintainerOptions{
                                      options_.dyn_full_threshold}))
                     .first;
        detail::DynState& st = *it->second;
        auto effect_or = st.graph.apply(batch);
        if (!effect_or.is_ok()) {
            status = effect_or.status();
        } else {
            const dyn::BatchEffect& effect = effect_or.value();
            const dyn::GraphView view = st.graph.view();
            outcome.inserted_arcs = effect.inserted_arcs;
            outcome.deleted_arcs = effect.deleted_arcs;
            outcome.dirty = effect.dirty.size();
            outcome.dirty_fraction =
                effect.dirty_fraction(view.num_vertices());
            if (effect.changed()) {
                outcome.cc_incremental = st.cc.update(view, effect);
                outcome.pr_incremental = st.pr.update(view, effect);
            }
            ++st.batches;
            if (options_.dyn_compact_every > 0 &&
                st.batches % static_cast<std::uint64_t>(
                                 options_.dyn_compact_every) ==
                    0 &&
                st.graph.pending_entries() > 0) {
                outcome.generation = st.graph.compact();
                outcome.compacted = true;
            } else {
                outcome.generation = ds->store()->generation();
            }
            dyn_generation_peak_ =
                std::max(dyn_generation_peak_, outcome.generation);
            generation_peak = dyn_generation_peak_;
            overlay_bytes =
                static_cast<double>(st.graph.pending_bytes());
        }
    }
    release_lanes(lane_budget_);
    if (!status.is_ok())
        return status;

    outcome.mutate_seconds =
        static_cast<double>(Timer::now_ns() - begin_ns) * 1e-9;
    const bool changed =
        outcome.inserted_arcs > 0 || outcome.deleted_arcs > 0;
    const std::uint64_t incremental =
        changed ? static_cast<std::uint64_t>(outcome.cc_incremental) +
                      static_cast<std::uint64_t>(outcome.pr_incremental)
                : 0;
    const std::uint64_t full = changed ? 2 - incremental : 0;
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++counters_.mutations;
        counters_.mutation_inserted_arcs +=
            static_cast<std::uint64_t>(outcome.inserted_arcs);
        counters_.mutation_deleted_arcs +=
            static_cast<std::uint64_t>(outcome.deleted_arcs);
        if (outcome.compacted)
            ++counters_.compactions;
        counters_.dyn_incremental += incremental;
        counters_.dyn_full += full;
    }
    if (tm_ != nullptr) {
        tm_->dyn_batches->inc();
        tm_->dyn_batch_edges->record(
            static_cast<std::uint64_t>(outcome.requested));
        tm_->dyn_inserted_arcs->inc(
            static_cast<std::uint64_t>(outcome.inserted_arcs));
        tm_->dyn_deleted_arcs->inc(
            static_cast<std::uint64_t>(outcome.deleted_arcs));
        if (outcome.compacted)
            tm_->dyn_compactions->inc();
        tm_->dyn_incremental->inc(incremental);
        tm_->dyn_full->inc(full);
        tm_->dyn_generation->set(
            static_cast<double>(generation_peak));
        tm_->dyn_dirty_fraction->set(outcome.dirty_fraction);
        tm_->dyn_overlay_bytes->set(overlay_bytes);
        tm_->dyn_mutate_ns->record(static_cast<std::uint64_t>(
            std::max<std::int64_t>(0, Timer::now_ns() - begin_ns)));
    }
    write_mutation_record(graph, outcome);
    return outcome;
}

void
Server::worker_loop()
{
    for (;;) {
        std::shared_ptr<RequestState> state;
        {
            std::unique_lock<std::mutex> lock(queue_mu_);
            queue_cv_.wait(
                lock, [this] { return shutdown_ || !admission_.empty(); });
            if (admission_.empty())
                return; // shutdown, queue drained
            state = std::static_pointer_cast<RequestState>(
                admission_.pop());
        }
        {
            std::lock_guard<std::mutex> lock(stats_mu_);
            --counters_.queue_depth;
        }
        if (tm_ != nullptr)
            tm_->queue_depth[priority_class(state->req.priority)]->add(-1);
        process(state);
    }
}

Status
Server::classify_cancel(const RequestState& state) const
{
    if (state.deadline_ns != 0 && Timer::now_ns() >= state.deadline_ns &&
        !state.user_cancelled.load(std::memory_order_relaxed))
        return Status(StatusCode::kDeadlineExceeded,
                      "deadline of " +
                          std::to_string(state.req.deadline_ms) +
                          " ms exceeded");
    return Status(StatusCode::kCancelled, "cancelled by caller");
}

void
Server::record_cell_outcome(const RequestState& state,
                            const Status& status, bool executed)
{
    if (!options_.enable_breaker)
        return;
    if (!executed) {
        breaker_.release(state.cell_key, state.probe);
        return;
    }
    switch (status.code()) {
      case StatusCode::kOk:
        breaker_.record_success(state.cell_key, state.probe);
        break;
      case StatusCode::kCancelled:
        // Caller-initiated: says nothing about the cell's health.
        breaker_.release(state.cell_key, state.probe);
        break;
      default:
        // Kernel errors, injected faults, and deadline/timeout expiries
        // mid-execution all count: a slow cell is a sick cell.
        breaker_.record_failure(state.cell_key, state.probe);
        break;
    }
}

void
Server::process(const std::shared_ptr<RequestState>& state)
{
    const std::int64_t dequeue_ns = Timer::now_ns();
    QueryResult result;
    result.queue_seconds =
        static_cast<double>(dequeue_ns - state->submit_ns) * 1e-9;
    if (tm_ != nullptr)
        tm_->queue_wait_ns->record(
            static_cast<std::uint64_t>(
                std::max<std::int64_t>(0, dequeue_ns - state->submit_ns)));

    // Expired or cancelled while still queued: answer without executing.
    if (state->user_cancelled.load(std::memory_order_relaxed) ||
        (state->deadline_ns != 0 && dequeue_ns >= state->deadline_ns)) {
        const Status status = classify_cancel(*state);
        record_cell_outcome(*state, status, /*executed=*/false);
        complete(state, status, std::move(result));
        return;
    }

    obs::TraceSession session;
    session.start_detached();
    Status status;
    bool executed = false;
    {
        obs::SessionBinding binding(session.gen());
        obs::record_span("serve.queue_wait", state->submit_ns, dequeue_ns);
        // Bind the request's trace id to the session so its spans and the
        // JSONL record carry the same identity.
        obs::counter_max("serve.trace", state->req.trace_id);

        // The generation the caller wants: whatever the store serves
        // right now.  A mutate() landing after this read is harmless —
        // the entry (or execution) reflects a coherent snapshot either
        // way; the next lookup sees the new generation.
        ResultCache::Lookup lookup = cache_.lookup_or_join(
            state->cache_key, state->ds->store()->generation());
        switch (lookup.role) {
          case ResultCache::Role::kHit: {
              obs::counter_add("serve.cache_hit", 1);
              {
                  std::lock_guard<std::mutex> lock(stats_mu_);
                  ++counters_.cache_hits;
              }
              result.value = std::move(lookup.value);
              result.fingerprint = lookup.fingerprint;
              result.generation = lookup.generation;
              result.cache_hit = true;
              record_cell_outcome(*state, status, /*executed=*/false);
              break;
          }
          case ResultCache::Role::kFollower: {
              {
                  std::lock_guard<std::mutex> lock(stats_mu_);
                  ++counters_.single_flight_joins;
              }
              const std::int64_t join_begin = Timer::now_ns();
              status = wait_for_leader(*state, *lookup.flight, result);
              obs::record_span("serve.join_wait", join_begin,
                               Timer::now_ns());
              record_cell_outcome(*state, status, /*executed=*/false);
              break;
          }
          case ResultCache::Role::kLeader: {
              // Core-budget scheduling: charge the request's width
              // against the lane budget before executing.  Cache hits
              // and followers never touch the budget, so they are served
              // even when every lane is busy.
              const int width = state->req.width;
              if (tm_ != nullptr)
                  tm_->lanes_requested->inc(
                      static_cast<std::uint64_t>(width));
              if (!acquire_lanes(*state, width)) {
                  status = classify_cancel(*state);
                  record_cell_outcome(*state, status, /*executed=*/false);
                  // Wake followers: their leader never ran ("abandoned"
                  // at wait_for_leader, so they retry cleanly).
                  cache_.publish(state->cache_key, lookup.flight, status,
                                 nullptr, 0, 0);
                  break;
              }
              // Pinned while lanes are held: mutate() needs the whole
              // budget, so the generation cannot move under execution.
              const std::uint64_t exec_generation =
                  state->ds->store()->generation();
              executed = true;
              {
                  std::lock_guard<std::mutex> lock(stats_mu_);
                  ++counters_.executions;
              }
              if (tm_ != nullptr)
                  tm_->executions->inc();
              const std::int64_t exec_begin = Timer::now_ns();
              std::shared_ptr<const ResultValue> value;
              std::uint64_t fingerprint = 0;
              try {
                  // Multi-lane execution under a LaneLease: the kernel's
                  // forks run on the leased lanes only, so concurrent
                  // requests parallelize on disjoint lane sets, and
                  // order-deterministic kernels make the payload
                  // bit-identical to a serial run at any width.
                  support::ScopedCancelToken scope(state->token.get());
                  par::LaneLease lease(width);
                  result.lanes = lease.width();
                  obs::counter_add(
                      "serve.lanes",
                      static_cast<std::uint64_t>(lease.width()));
                  obs::ScopedSpan span("serve.execute");
                  support::FaultInjector::global().at("serve.execute");
                  support::check_cancelled();
                  ResultValue v = execute_kernel(*state);
                  fingerprint = result_fingerprint(v);
                  value = std::make_shared<const ResultValue>(std::move(v));
              } catch (...) {
                  status = support::current_exception_status();
              }
              // Cooperative unwinds surface as the watchdog's kTimeout;
              // re-express them in service terms.
              if (status.code() == StatusCode::kTimeout)
                  status = classify_cancel(*state);
              record_cell_outcome(*state, status, /*executed=*/true);
              cache_.publish(state->cache_key, lookup.flight, status,
                             value, fingerprint, exec_generation);
              if (status.is_ok()) {
                  result.value = std::move(value);
                  result.fingerprint = fingerprint;
                  result.generation = exec_generation;
              }
              const std::int64_t exec_ns = Timer::now_ns() - exec_begin;
              result.execute_seconds =
                  static_cast<double>(exec_ns) * 1e-9;
              {
                  std::lock_guard<std::mutex> lock(stats_mu_);
                  counters_.lanes_granted +=
                      static_cast<std::uint64_t>(
                          std::max(0, result.lanes));
              }
              if (tm_ != nullptr) {
                  tm_->lanes_granted->inc(static_cast<std::uint64_t>(
                      std::max(0, result.lanes)));
                  tm_->execute_ns->record(
                      static_cast<std::uint64_t>(std::max<std::int64_t>(
                          0, exec_ns)));
              }
              {
                  // Feed the admission drain estimate: what one queue
                  // slot actually cost, success or not.
                  std::lock_guard<std::mutex> lock(queue_mu_);
                  admission_.record_service(exec_ns);
              }
              release_lanes(width);
              break;
          }
        }
    }
    (void)executed;
    session.stop();
    if (result.lanes > 0 && result.execute_seconds > 0) {
        // Lane busy time over lanes x wall: 1.0 means every granted lane
        // was busy for the whole execution.
        const obs::TrialMetrics summary = obs::summarize(session);
        result.parallel_efficiency =
            std::min(1.0, summary.busy_seconds /
                              (result.execute_seconds *
                               static_cast<double>(result.lanes)));
        if (tm_ != nullptr)
            tm_->parallel_efficiency_millionths->record(
                static_cast<std::uint64_t>(result.parallel_efficiency *
                                           1e6));
    }
    if (!options_.metrics_path.empty())
        write_metrics_record(*state, session);
    complete(state, std::move(status), std::move(result));
    flush_breaker_transitions();
}

bool
Server::acquire_lanes(const RequestState& state, int width)
{
    detail::LaneGate& gate = *lane_gate_;
    std::unique_lock<std::mutex> lock(gate.mu);
    for (;;) {
        if (state.user_cancelled.load(std::memory_order_relaxed))
            return false;
        if (state.deadline_ns != 0 && Timer::now_ns() >= state.deadline_ns)
            return false;
        if (gate.in_use + width <= lane_budget_) {
            gate.in_use += width;
            if (tm_ != nullptr)
                tm_->lanes_in_use->set(gate.in_use);
            return true;
        }
        // Budget holders are executing leaders, which always finish, so
        // this wait cannot deadlock — including during shutdown's queue
        // drain.  Wakeups are event-driven (release_lanes, cancel(), and
        // shutdown() all notify); the only timed bound needed is the
        // request's own deadline, so expiry is reported the moment it
        // passes instead of on the next poll tick.
        if (state.deadline_ns == 0) {
            gate.cv.wait(lock);
        } else {
            const std::int64_t remaining_ns =
                state.deadline_ns - Timer::now_ns();
            if (remaining_ns > 0)
                gate.cv.wait_for(lock,
                                 std::chrono::nanoseconds(remaining_ns));
        }
    }
}

void
Server::release_lanes(int width)
{
    detail::LaneGate& gate = *lane_gate_;
    {
        std::lock_guard<std::mutex> lock(gate.mu);
        gate.in_use -= width;
        if (tm_ != nullptr)
            tm_->lanes_in_use->set(gate.in_use);
    }
    gate.cv.notify_all();
}

void
Server::acquire_all_lanes()
{
    // Budget holders are executing leaders, which always finish, so the
    // wait terminates; once the full budget is charged, no leader can
    // start executing until the mutation releases it.  Cache hits and
    // followers never touch the budget and keep being served.
    detail::LaneGate& gate = *lane_gate_;
    std::unique_lock<std::mutex> lock(gate.mu);
    gate.cv.wait(lock, [&gate] { return gate.in_use == 0; });
    gate.in_use = lane_budget_;
    if (tm_ != nullptr)
        tm_->lanes_in_use->set(gate.in_use);
}

Status
Server::wait_for_leader(RequestState& state, ResultCache::Inflight& flight,
                        QueryResult& result)
{
    std::unique_lock<std::mutex> lock(flight.mu);
    while (!flight.done) {
        if (state.user_cancelled.load(std::memory_order_relaxed))
            return Status(StatusCode::kCancelled, "cancelled by caller");
        if (state.deadline_ns != 0 && Timer::now_ns() >= state.deadline_ns)
            return Status(StatusCode::kDeadlineExceeded,
                          "deadline of " +
                              std::to_string(state.req.deadline_ms) +
                              " ms exceeded while joined to an "
                              "in-flight execution");
        flight.cv.wait_for(lock, std::chrono::milliseconds(2));
    }
    if (flight.status.is_ok()) {
        result.value = flight.value;
        result.fingerprint = flight.fingerprint;
        result.generation = flight.generation;
        result.shared_execution = true;
        return Status::ok();
    }
    switch (flight.status.code()) {
      case StatusCode::kTimeout:
      case StatusCode::kDeadlineExceeded:
      case StatusCode::kCancelled:
        // The leader was abandoned for reasons unrelated to the query
        // itself; this follower's answer was never computed.
        return Status(StatusCode::kCancelled,
                      "single-flight leader abandoned; safe to retry");
      default:
        // Deterministic failure: retrying the same query would repeat it.
        return flight.status;
    }
}

bool
Server::try_cache_fallback(const RequestState& state, QueryResult& result)
{
    ResultCache::Peek peek = cache_.peek(
        state.cache_key, state.ds->store()->generation());
    if (peek.value == nullptr)
        return false;
    result.value = std::move(peek.value);
    result.fingerprint = peek.fingerprint;
    result.generation = peek.generation;
    if (peek.fresh) {
        result.cache_hit = true;
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++counters_.cache_hits;
    } else {
        result.degraded = true;
    }
    return true;
}

void
Server::complete(const std::shared_ptr<RequestState>& state, Status status,
                 QueryResult result)
{
    // Degraded mode: a request that opted in and cannot be served fresh
    // — shed, breaker-open, failed, or expired — is answered from the
    // cache (stale included) rather than refused.  Never masks a bad
    // request or a caller's own cancel.
    if (!status.is_ok() && state->req.allow_stale &&
        status.code() != StatusCode::kInvalidInput &&
        !state->user_cancelled.load(std::memory_order_relaxed) &&
        result.value == nullptr && try_cache_fallback(*state, result)) {
        status = Status::ok();
        obs::counter_add("serve.degraded", result.degraded ? 1 : 0);
    }
    const std::int64_t done_ns = Timer::now_ns();
    const std::int64_t latency_ns =
        std::max<std::int64_t>(0, done_ns - state->submit_ns);
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++counters_.completed;
        switch (status.code()) {
          case StatusCode::kOk:
            ++counters_.succeeded;
            if (result.degraded)
                ++counters_.degraded;
            break;
          case StatusCode::kDeadlineExceeded:
            ++counters_.deadline_exceeded;
            break;
          case StatusCode::kCancelled:
            ++counters_.cancelled;
            break;
          default:
            ++counters_.failed;
            break;
        }
    }
    if (tm_ != nullptr) {
        tm_->completed_for(status.code()).inc();
        if (status.is_ok() && result.degraded)
            tm_->degraded->inc();
        const int kernel = static_cast<int>(state->req.kernel);
        if (kernel >= 0 && kernel < detail::ServeTelemetry::kKernels)
            tm_->latency_ns[kernel][priority_class(state->req.priority)]
                ->record(static_cast<std::uint64_t>(latency_ns));
    }
    observe_slo(status.is_ok(), status.is_ok() && !result.degraded,
                latency_ns);
    result.trace_id = state->req.trace_id;
    {
        std::lock_guard<std::mutex> lock(state->mu);
        result.service_seconds = static_cast<double>(latency_ns) * 1e-9;
        state->status = std::move(status);
        state->result = std::move(result);
        state->done = true;
    }
    state->cv.notify_all();
}

void
Server::write_metrics_record(const RequestState& state,
                             const obs::TraceSession& session)
{
    obs::MetricsRecord record;
    record.mode = harness::to_string(state.req.mode);
    record.framework = state.fw->name;
    record.kernel = harness::to_string(state.req.kernel);
    record.graph = state.req.graph;
    record.trial = 0;
    record.attempt = state.req.attempt;
    record.trace_id = state.req.trace_id;
    record.metrics = obs::summarize(session);
    record.metrics.peak_bytes = state.ds->bytes_resident();
    const std::string line = obs::metrics_record_line(record);

    std::lock_guard<std::mutex> lock(metrics_mu_);
    std::ofstream out(options_.metrics_path, std::ios::app);
    if (out)
        out << line << "\n";
}

void
Server::flush_breaker_transitions()
{
    // Drain unconditionally (bounds memory); write only when streaming.
    const std::vector<CircuitBreaker::Transition> transitions =
        breaker_.drain_transitions();
    if (transitions.empty() || options_.metrics_path.empty())
        return;
    std::lock_guard<std::mutex> lock(metrics_mu_);
    std::ofstream out(options_.metrics_path, std::ios::app);
    if (!out)
        return;
    for (const CircuitBreaker::Transition& t : transitions) {
        out << "{\"kind\":\"serve.breaker\",\"cell\":\""
            << support::json_escape(t.cell) << "\",\"from\":\""
            << CircuitBreaker::to_string(t.from) << "\",\"to\":\""
            << CircuitBreaker::to_string(t.to) << "\",\"seq\":" << t.seq
            << "}\n";
    }
}

ServerStats
Server::stats_snapshot() const
{
    ServerStats out;
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        const Counters& c = counters_;
        out.submitted = c.submitted;
        out.shed = c.shed;
        out.infeasible = c.infeasible;
        out.unavailable = c.unavailable;
        out.completed = c.completed;
        out.succeeded = c.succeeded;
        out.degraded = c.degraded;
        out.deadline_exceeded = c.deadline_exceeded;
        out.cancelled = c.cancelled;
        out.failed = c.failed;
        out.executions = c.executions;
        out.lanes_granted = c.lanes_granted;
        out.cache_hits = c.cache_hits;
        out.single_flight_joins = c.single_flight_joins;
        out.retries = c.retries;
        out.retry_denied = c.retry_denied;
        out.mutations = c.mutations;
        out.mutation_inserted_arcs = c.mutation_inserted_arcs;
        out.mutation_deleted_arcs = c.mutation_deleted_arcs;
        out.compactions = c.compactions;
        out.dyn_incremental = c.dyn_incremental;
        out.dyn_full = c.dyn_full;
        out.plans_submitted = c.plans_submitted;
        out.plans_completed = c.plans_completed;
        out.plans_failed = c.plans_failed;
        out.plan_nodes = c.plan_nodes;
        out.plan_nodes_executed = c.plan_nodes_executed;
        out.plan_node_cache_hits = c.plan_node_cache_hits;
        out.plan_nodes_shared = c.plan_nodes_shared;
        out.plan_fused_sweeps = c.plan_fused_sweeps;
        out.plan_sources_fused = c.plan_sources_fused;
        out.queue_depth = c.queue_depth;
    }
    out.breaker_transitions = breaker_.transition_count();
    out.breaker_open_cells = breaker_.open_cells();
    const ResultCache::Stats cache = cache_.stats();
    out.cache_entries = cache.entries;
    out.cache_bytes = cache.bytes;
    return out;
}

int
Server::metrics_port() const
{
    return listener_ != nullptr ? listener_->port() : -1;
}

telemetry::SloEvaluation
Server::slo_evaluation()
{
    return evaluate_slo(Timer::now_ns());
}

std::uint64_t
Server::mint_trace_id()
{
    const std::uint64_t seq =
        trace_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    const std::uint64_t id =
        SplitMix64(trace_base_ ^ (seq * 0x9e3779b97f4a7c15ULL)).next();
    return id == 0 ? 1 : id; // 0 means "mint for me"
}

namespace
{

/** Trace ids render as fixed-width hex, matching obs::metrics_record_line. */
std::string
trace_hex(std::uint64_t trace_id)
{
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(trace_id));
    return std::string(hex);
}

} // namespace

void
Server::write_refusal_record(const RequestState& state,
                             const Status& status, bool served_degraded)
{
    if (options_.metrics_path.empty())
        return;
    std::ostringstream line;
    line << "{\"kind\":\"serve.refusal\",\"trace\":\""
         << trace_hex(state.req.trace_id)
         << "\",\"attempt\":" << state.req.attempt << ",\"code\":\""
         << support::to_string(status.code()) << "\",\"cell\":\""
         << support::json_escape(state.cell_key)
         << "\",\"degraded\":" << (served_degraded ? 1 : 0)
         << ",\"t_ns\":" << Timer::now_ns() << "}";
    std::lock_guard<std::mutex> lock(metrics_mu_);
    std::ofstream out(options_.metrics_path, std::ios::app);
    if (out)
        out << line.str() << "\n";
}

void
Server::write_mutation_record(const std::string& graph,
                              const MutationOutcome& outcome)
{
    if (options_.metrics_path.empty())
        return;
    const bool changed =
        outcome.inserted_arcs > 0 || outcome.deleted_arcs > 0;
    const auto decision = [changed](bool incremental) {
        return !changed ? "none" : incremental ? "incremental" : "full";
    };
    std::ostringstream line;
    line << "{\"kind\":\"serve.mutation\",\"graph\":\""
         << support::json_escape(graph)
         << "\",\"requested\":" << outcome.requested
         << ",\"inserted_arcs\":" << outcome.inserted_arcs
         << ",\"deleted_arcs\":" << outcome.deleted_arcs
         << ",\"dirty\":" << outcome.dirty << ",\"dirty_fraction\":"
         << support::json_double(outcome.dirty_fraction) << ",\"cc\":\""
         << decision(outcome.cc_incremental) << "\",\"pr\":\""
         << decision(outcome.pr_incremental)
         << "\",\"compacted\":" << (outcome.compacted ? 1 : 0)
         << ",\"generation\":" << outcome.generation << ",\"mutate_ms\":"
         << support::json_double(outcome.mutate_seconds * 1e3)
         << ",\"t_ns\":" << Timer::now_ns() << "}";
    std::lock_guard<std::mutex> lock(metrics_mu_);
    std::ofstream out(options_.metrics_path, std::ios::app);
    if (out)
        out << line.str() << "\n";
}

void
Server::observe_slo(bool answered, bool fresh, std::int64_t latency_ns)
{
    const std::int64_t now = Timer::now_ns();
    slo_.record(now, answered, fresh,
                static_cast<std::uint64_t>(
                    std::max<std::int64_t>(0, latency_ns)));
    // Evaluate at roughly half-bucket granularity: one caller wins the
    // CAS and pays for the evaluation, everyone else just records.
    const std::int64_t period = std::max<std::int64_t>(
        1, options_.slo.bucket_ns / 2);
    std::int64_t last = last_slo_eval_ns_.load(std::memory_order_relaxed);
    if (now - last < period)
        return;
    if (!last_slo_eval_ns_.compare_exchange_strong(
            last, now, std::memory_order_relaxed))
        return;
    evaluate_slo(now);
}

telemetry::SloEvaluation
Server::evaluate_slo(std::int64_t now_ns)
{
    const telemetry::SloEvaluation ev = slo_.evaluate(now_ns);
    if (tm_ != nullptr) {
        tm_->slo_availability_short->set(ev.availability_short);
        tm_->slo_availability_long->set(ev.availability_long);
        tm_->slo_fresh_availability_short->set(
            ev.fresh_availability_short);
        tm_->slo_fresh_availability_long->set(ev.fresh_availability_long);
        tm_->slo_burn_short->set(ev.burn_short);
        tm_->slo_burn_long->set(ev.burn_long);
        tm_->slo_firing->set(ev.firing ? 1.0 : 0.0);
        tm_->slo_p99_short_ns->set(
            static_cast<double>(ev.p99_short_ns));
        tm_->slo_availability_lifetime->set(ev.availability_lifetime);
    }
    if (ev.changed)
        write_slo_burn_record(ev);
    return ev;
}

void
Server::write_slo_burn_record(const telemetry::SloEvaluation& ev)
{
    // Burn transitions stream with the per-request records when those
    // are on; otherwise they join the telemetry snapshots.
    const std::string& path = !options_.metrics_path.empty()
                                  ? options_.metrics_path
                                  : options_.telemetry_path;
    if (path.empty())
        return;
    std::ostringstream line;
    line << "{\"kind\":\"serve.slo.burn\",\"state\":\""
         << (ev.firing ? "firing" : "clear")
         << "\",\"t_ns\":" << ev.at_ns
         << ",\"burn_short\":" << support::json_double(ev.burn_short)
         << ",\"burn_long\":" << support::json_double(ev.burn_long)
         << ",\"availability_short\":"
         << support::json_double(ev.availability_short)
         << ",\"fresh_availability_short\":"
         << support::json_double(ev.fresh_availability_short)
         << ",\"p99_short_ns\":" << ev.p99_short_ns
         << ",\"short_total\":" << ev.short_total
         << ",\"long_total\":" << ev.long_total << "}";
    std::lock_guard<std::mutex> lock(metrics_mu_);
    std::ofstream out(path, std::ios::app);
    if (out)
        out << line.str() << "\n";
}

void
Server::write_telemetry_snapshot()
{
    if (options_.telemetry_path.empty())
        return;
    const telemetry::Snapshot snap =
        telemetry::Registry::global().snapshot();
    std::ostringstream line;
    line << "{\"kind\":\"serve.telemetry\",\"seq\":" << telemetry_seq_++
         << ",\"t_ns\":" << Timer::now_ns() << ",\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : snap.counters) {
        line << (first ? "" : ",") << "\"" << support::json_escape(name)
             << "\":" << value;
        first = false;
    }
    line << "},\"gauges\":{";
    first = true;
    for (const auto& [name, value] : snap.gauges) {
        line << (first ? "" : ",") << "\"" << support::json_escape(name)
             << "\":" << support::json_double(value);
        first = false;
    }
    line << "},\"hist\":{";
    first = true;
    for (const auto& [name, hist] : snap.histograms) {
        line << (first ? "" : ",") << "\"" << support::json_escape(name)
             << "\":{\"count\":" << hist.count << ",\"sum\":" << hist.sum
             << ",\"buckets\":{";
        bool first_bucket = true;
        for (std::size_t b = 0; b < hist.buckets.size(); ++b) {
            if (hist.buckets[b] == 0)
                continue;
            line << (first_bucket ? "" : ",") << "\"" << b
                 << "\":" << hist.buckets[b];
            first_bucket = false;
        }
        line << "}}";
        first = false;
    }
    line << "}}";
    std::lock_guard<std::mutex> lock(metrics_mu_);
    std::ofstream out(options_.telemetry_path, std::ios::app);
    if (out)
        out << line.str() << "\n";
}

void
Server::telemetry_flush_loop()
{
    const auto interval = std::chrono::milliseconds(
        std::max(1, options_.telemetry_flush_ms));
    std::unique_lock<std::mutex> lock(flusher_mu_);
    for (;;) {
        flusher_cv_.wait_for(lock, interval,
                             [this] { return flusher_stop_; });
        if (flusher_stop_)
            return;
        lock.unlock();
        write_telemetry_snapshot();
        evaluate_slo(Timer::now_ns());
        lock.lock();
    }
}

StatusOr<QueryResult>
Server::Handle::wait() const
{
    GM_ASSERT(state_ != nullptr, "wait() on an empty serve::Handle");
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [this] { return state_->done; });
    if (!state_->status.is_ok())
        return state_->status;
    return state_->result;
}

StatusOr<QueryResult>
Server::Handle::wait_for(int timeout_ms) const
{
    GM_ASSERT(state_ != nullptr, "wait_for() on an empty serve::Handle");
    std::unique_lock<std::mutex> lock(state_->mu);
    const bool done = state_->cv.wait_for(
        lock, std::chrono::milliseconds(std::max(0, timeout_ms)),
        [this] { return state_->done; });
    if (!done)
        return Status(StatusCode::kDeadlineExceeded,
                      "wait_for(" + std::to_string(timeout_ms) +
                          " ms) expired; the request is still in "
                          "flight and can be waited on again");
    if (!state_->status.is_ok())
        return state_->status;
    return state_->result;
}

void
Server::Handle::cancel() const
{
    GM_ASSERT(state_ != nullptr, "cancel() on an empty serve::Handle");
    state_->user_cancelled.store(true, std::memory_order_relaxed);
    state_->token->request();
    // Wake the request if it is a leader blocked on the lane budget; the
    // gate is shared-ptr-owned by the state, so this is safe even after
    // the server has been destroyed.
    if (state_->gate != nullptr)
        state_->gate->cv.notify_all();
}

} // namespace gm::serve
