#include "gm/serve/deadline.hh"

#include <chrono>

#include "gm/support/timer.hh"
#include "gm/telemetry/registry.hh"

namespace gm::serve
{

namespace
{

/** Armed-timer gauge (heap occupancy) + fired-deadline counter.  A timer
 *  "fires" when its deadline passes, whether or not the request is still
 *  running — completed requests keep their timer until expiry. */
struct DeadlineTelemetry
{
    telemetry::Gauge& armed;
    telemetry::Counter& fired;

    DeadlineTelemetry()
        : armed(telemetry::Registry::global().gauge(
              "gm_serve_deadline_armed")),
          fired(telemetry::Registry::global().counter(
              "gm_serve_deadline_fired_total"))
    {
    }
};

DeadlineTelemetry&
deadline_telemetry()
{
    static DeadlineTelemetry* t = new DeadlineTelemetry();
    return *t;
}

} // namespace

DeadlineScheduler::DeadlineScheduler() : thread_([this] { loop(); }) {}

DeadlineScheduler::~DeadlineScheduler()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
    // Timers still armed at teardown (requests that finished before
    // their deadline) leave the gauge; zero it out.
    deadline_telemetry().armed.add(-static_cast<double>(heap_.size()));
}

void
DeadlineScheduler::arm(std::int64_t deadline_ns,
                       std::shared_ptr<support::CancelToken> token)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        heap_.push(Armed{deadline_ns, std::move(token)});
        deadline_telemetry().armed.add(1);
    }
    cv_.notify_all();
}

void
DeadlineScheduler::loop()
{
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
        if (heap_.empty()) {
            cv_.wait(lock);
            continue;
        }
        const std::int64_t next = heap_.top().deadline_ns;
        const std::int64_t now = Timer::now_ns();
        if (now < next) {
            // Woken early by arm() (a sooner deadline may now lead the
            // heap) or by shutdown; re-evaluate either way.
            cv_.wait_for(lock, std::chrono::nanoseconds(next - now));
            continue;
        }
        while (!heap_.empty() &&
               heap_.top().deadline_ns <= Timer::now_ns()) {
            heap_.top().token->request();
            heap_.pop();
            deadline_telemetry().armed.add(-1);
            deadline_telemetry().fired.inc();
        }
    }
}

} // namespace gm::serve
