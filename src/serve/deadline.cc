#include "gm/serve/deadline.hh"

#include <chrono>

#include "gm/support/timer.hh"

namespace gm::serve
{

DeadlineScheduler::DeadlineScheduler() : thread_([this] { loop(); }) {}

DeadlineScheduler::~DeadlineScheduler()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
}

void
DeadlineScheduler::arm(std::int64_t deadline_ns,
                       std::shared_ptr<support::CancelToken> token)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        heap_.push(Armed{deadline_ns, std::move(token)});
    }
    cv_.notify_all();
}

void
DeadlineScheduler::loop()
{
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
        if (heap_.empty()) {
            cv_.wait(lock);
            continue;
        }
        const std::int64_t next = heap_.top().deadline_ns;
        const std::int64_t now = Timer::now_ns();
        if (now < next) {
            // Woken early by arm() (a sooner deadline may now lead the
            // heap) or by shutdown; re-evaluate either way.
            cv_.wait_for(lock, std::chrono::nanoseconds(next - now));
            continue;
        }
        while (!heap_.empty() &&
               heap_.top().deadline_ns <= Timer::now_ns()) {
            heap_.top().token->request();
            heap_.pop();
        }
    }
}

} // namespace gm::serve
