#include "gm/serve/admission.hh"

#include "gm/support/log.hh"

namespace gm::serve
{

const char*
to_string(Priority priority)
{
    switch (priority) {
      case Priority::kInteractive:
        return "interactive";
      case Priority::kBatch:
        return "batch";
      case Priority::kBestEffort:
        return "best_effort";
    }
    return "?";
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options)
{
    GM_ASSERT(options_.total_capacity >= 1,
              "admission needs a non-empty queue");
    GM_ASSERT(options_.workers >= 1, "admission needs >= 1 worker");
    GM_ASSERT(options_.service_ewma_alpha > 0 &&
                  options_.service_ewma_alpha <= 1,
              "service_ewma_alpha must be in (0, 1]");
}

AdmissionController::Decision
AdmissionController::try_admit(Ticket ticket, std::int64_t now_ns)
{
    const auto lane = static_cast<std::size_t>(ticket.priority);
    GM_ASSERT(lane < lanes_.size(), "priority out of range");
    if (depth_ >= options_.total_capacity)
        return Decision::kQueueFull;
    if (lanes_[lane].size() >= options_.class_capacity[lane])
        return Decision::kClassFull;
    if (ticket.deadline_ns != 0) {
        const std::int64_t wait = estimated_wait_ns(ticket.priority);
        if (wait > 0 && now_ns + wait >= ticket.deadline_ns)
            return Decision::kDeadlineInfeasible;
    }
    lanes_[lane].push_back(std::move(ticket));
    ++depth_;
    return Decision::kAdmitted;
}

std::shared_ptr<void>
AdmissionController::pop()
{
    for (auto& lane : lanes_) {
        if (lane.empty())
            continue;
        std::shared_ptr<void> payload = std::move(lane.front().payload);
        lane.pop_front();
        --depth_;
        return payload;
    }
    return nullptr;
}

void
AdmissionController::record_service(std::int64_t service_ns)
{
    if (service_ns <= 0)
        return;
    if (service_ewma_ns_ == 0)
        service_ewma_ns_ = static_cast<double>(service_ns);
    else
        service_ewma_ns_ +=
            options_.service_ewma_alpha *
            (static_cast<double>(service_ns) - service_ewma_ns_);
}

std::int64_t
AdmissionController::estimated_wait_ns(Priority priority) const
{
    if (service_ewma_ns_ == 0)
        return 0;
    // Everything drained before a new arrival of this priority: the same
    // and higher lanes, `workers` at a time, plus its own execution.
    std::size_t ahead = 0;
    for (std::size_t lane = 0;
         lane <= static_cast<std::size_t>(priority); ++lane)
        ahead += lanes_[lane].size();
    const auto rounds =
        (ahead + static_cast<std::size_t>(options_.workers)) /
        static_cast<std::size_t>(options_.workers);
    return static_cast<std::int64_t>(static_cast<double>(rounds) *
                                     service_ewma_ns_);
}

} // namespace gm::serve
