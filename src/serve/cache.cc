#include "gm/serve/cache.hh"

#include "gm/support/fault_injector.hh"
#include "gm/telemetry/registry.hh"

namespace gm::serve
{

namespace
{

/** Live-telemetry handles for the cache, acquired once per process.
 *  Probes no-op unless a Server has enabled the global registry. */
struct CacheTelemetry
{
    telemetry::Counter& hits;
    telemetry::Counter& misses;
    telemetry::Counter& expired_misses;
    telemetry::Counter& stale_generation_misses;
    telemetry::Counter& joins;
    telemetry::Counter& insertions;
    telemetry::Counter& evictions;
    telemetry::Counter& stale_serves;
    telemetry::Gauge& bytes;
    telemetry::Gauge& entries;

    CacheTelemetry()
        : hits(telemetry::Registry::global().counter(
              "gm_serve_cache_hits_total")),
          misses(telemetry::Registry::global().counter(
              "gm_serve_cache_misses_total")),
          expired_misses(telemetry::Registry::global().counter(
              "gm_serve_cache_expired_misses_total")),
          stale_generation_misses(telemetry::Registry::global().counter(
              "gm_serve_cache_stale_generation_misses_total")),
          joins(telemetry::Registry::global().counter(
              "gm_serve_cache_joins_total")),
          insertions(telemetry::Registry::global().counter(
              "gm_serve_cache_insertions_total")),
          evictions(telemetry::Registry::global().counter(
              "gm_serve_cache_evictions_total")),
          stale_serves(telemetry::Registry::global().counter(
              "gm_serve_cache_stale_serves_total")),
          bytes(telemetry::Registry::global().gauge(
              "gm_serve_cache_bytes")),
          entries(telemetry::Registry::global().gauge(
              "gm_serve_cache_entries"))
    {
    }
};

CacheTelemetry&
cache_telemetry()
{
    static CacheTelemetry* t = new CacheTelemetry();
    return *t;
}

} // namespace

ResultCache::Lookup
ResultCache::lookup_or_join(const std::string& key,
                            std::uint64_t generation)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (auto it = entries_.find(key); it != entries_.end()) {
        const bool same_gen = it->second.generation == generation;
        if (same_gen && !expired(it->second, clock_->now_ns())) {
            lru_.splice(lru_.begin(), lru_, it->second.lru_it);
            ++counters_.hits;
            cache_telemetry().hits.inc();
            Lookup hit;
            hit.role = Role::kHit;
            hit.value = it->second.value;
            hit.fingerprint = it->second.fingerprint;
            hit.generation = it->second.generation;
            return hit;
        }
        // Past its TTL or from an older data generation: no longer a
        // hit, but deliberately kept — peek() serves it stale until a
        // fresh leader's publish() replaces it.
        if (same_gen) {
            ++counters_.expired_misses;
            cache_telemetry().expired_misses.inc();
        } else {
            ++counters_.stale_generation_misses;
            cache_telemetry().stale_generation_misses.inc();
        }
    }
    ++counters_.misses;
    cache_telemetry().misses.inc();
    auto [it, inserted] = inflight_.try_emplace(key);
    if (inserted)
        it->second = std::make_shared<Inflight>();
    Lookup miss;
    miss.role = inserted ? Role::kLeader : Role::kFollower;
    miss.flight = it->second;
    if (!inserted) {
        ++counters_.joins;
        cache_telemetry().joins.inc();
    }
    return miss;
}

ResultCache::Peek
ResultCache::peek(const std::string& key, std::uint64_t generation)
{
    std::lock_guard<std::mutex> lock(mu_);
    Peek out;
    auto it = entries_.find(key);
    if (it == entries_.end())
        return out;
    out.value = it->second.value;
    out.fingerprint = it->second.fingerprint;
    out.generation = it->second.generation;
    out.fresh = it->second.generation == generation &&
                !expired(it->second, clock_->now_ns());
    if (!out.fresh) {
        ++counters_.stale_serves;
        cache_telemetry().stale_serves.inc();
    }
    return out;
}

void
ResultCache::publish(const std::string& key,
                     const std::shared_ptr<Inflight>& flight,
                     support::Status status,
                     std::shared_ptr<const ResultValue> value,
                     std::uint64_t fingerprint, std::uint64_t generation)
{
    // Chaos site: an injected error loses the insertion (not the
    // answer), a delay fault slows publication.
    bool drop_insert = false;
    if (status.is_ok() && value != nullptr) {
        try {
            support::FaultInjector::global().at("serve.cache.insert");
        } catch (const support::FaultInjectedError&) {
            drop_insert = true;
        }
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        // Retire the in-flight slot so the next identical query becomes a
        // hit (on success) or a fresh leader (on failure) — never a
        // follower of a finished flight.
        if (auto it = inflight_.find(key);
            it != inflight_.end() && it->second == flight)
            inflight_.erase(it);

        if (status.is_ok() && value != nullptr && !drop_insert) {
            const std::size_t bytes = result_bytes(*value) + key.size();
            if (bytes <= capacity_bytes_) {
                // Replace an existing (possibly expired) entry in place.
                if (auto it = entries_.find(key); it != entries_.end()) {
                    bytes_ -= it->second.bytes;
                    lru_.erase(it->second.lru_it);
                    entries_.erase(it);
                }
                while (bytes_ + bytes > capacity_bytes_ && !lru_.empty()) {
                    const std::string& victim = lru_.back();
                    auto vit = entries_.find(victim);
                    bytes_ -= vit->second.bytes;
                    entries_.erase(vit);
                    lru_.pop_back();
                    ++counters_.evictions;
                    cache_telemetry().evictions.inc();
                }
                lru_.push_front(key);
                entries_[key] = Entry{value, fingerprint, generation,
                                      bytes, clock_->now_ns(),
                                      lru_.begin()};
                bytes_ += bytes;
                ++counters_.insertions;
                cache_telemetry().insertions.inc();
            }
        }
        cache_telemetry().bytes.set(static_cast<double>(bytes_));
        cache_telemetry().entries.set(
            static_cast<double>(entries_.size()));
    }
    {
        std::lock_guard<std::mutex> lock(flight->mu);
        flight->status = std::move(status);
        flight->value =
            flight->status.is_ok() ? std::move(value) : nullptr;
        flight->fingerprint = fingerprint;
        flight->generation = generation;
        flight->done = true;
    }
    flight->cv.notify_all();
}

ResultCache::Stats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Stats out = counters_;
    out.entries = entries_.size();
    out.bytes = bytes_;
    return out;
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    lru_.clear();
    bytes_ = 0;
    cache_telemetry().bytes.set(0);
    cache_telemetry().entries.set(0);
}

} // namespace gm::serve
