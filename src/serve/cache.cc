#include "gm/serve/cache.hh"

namespace gm::serve
{

ResultCache::Lookup
ResultCache::lookup_or_join(const std::string& key)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (auto it = entries_.find(key); it != entries_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        ++counters_.hits;
        Lookup hit;
        hit.role = Role::kHit;
        hit.value = it->second.value;
        hit.fingerprint = it->second.fingerprint;
        return hit;
    }
    ++counters_.misses;
    auto [it, inserted] = inflight_.try_emplace(key);
    if (inserted)
        it->second = std::make_shared<Inflight>();
    Lookup miss;
    miss.role = inserted ? Role::kLeader : Role::kFollower;
    miss.flight = it->second;
    if (!inserted)
        ++counters_.joins;
    return miss;
}

void
ResultCache::publish(const std::string& key,
                     const std::shared_ptr<Inflight>& flight,
                     support::Status status,
                     std::shared_ptr<const ResultValue> value,
                     std::uint64_t fingerprint)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        // Retire the in-flight slot so the next identical query becomes a
        // hit (on success) or a fresh leader (on failure) — never a
        // follower of a finished flight.
        if (auto it = inflight_.find(key);
            it != inflight_.end() && it->second == flight)
            inflight_.erase(it);

        if (status.is_ok() && value != nullptr) {
            const std::size_t bytes = result_bytes(*value) + key.size();
            if (bytes <= capacity_bytes_ &&
                entries_.find(key) == entries_.end()) {
                while (bytes_ + bytes > capacity_bytes_ && !lru_.empty()) {
                    const std::string& victim = lru_.back();
                    auto vit = entries_.find(victim);
                    bytes_ -= vit->second.bytes;
                    entries_.erase(vit);
                    lru_.pop_back();
                    ++counters_.evictions;
                }
                lru_.push_front(key);
                entries_[key] =
                    Entry{value, fingerprint, bytes, lru_.begin()};
                bytes_ += bytes;
                ++counters_.insertions;
            }
        }
    }
    {
        std::lock_guard<std::mutex> lock(flight->mu);
        flight->status = std::move(status);
        flight->value =
            flight->status.is_ok() ? std::move(value) : nullptr;
        flight->fingerprint = fingerprint;
        flight->done = true;
    }
    flight->cv.notify_all();
}

ResultCache::Stats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Stats out = counters_;
    out.entries = entries_.size();
    out.bytes = bytes_;
    return out;
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    lru_.clear();
    bytes_ = 0;
}

} // namespace gm::serve
