#include "gm/serve/cache.hh"

#include "gm/support/fault_injector.hh"

namespace gm::serve
{

ResultCache::Lookup
ResultCache::lookup_or_join(const std::string& key)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (auto it = entries_.find(key); it != entries_.end()) {
        if (!expired(it->second, clock_->now_ns())) {
            lru_.splice(lru_.begin(), lru_, it->second.lru_it);
            ++counters_.hits;
            Lookup hit;
            hit.role = Role::kHit;
            hit.value = it->second.value;
            hit.fingerprint = it->second.fingerprint;
            return hit;
        }
        // Past its TTL: no longer a hit, but deliberately kept — peek()
        // serves it stale until a fresh leader's publish() replaces it.
        ++counters_.expired_misses;
    }
    ++counters_.misses;
    auto [it, inserted] = inflight_.try_emplace(key);
    if (inserted)
        it->second = std::make_shared<Inflight>();
    Lookup miss;
    miss.role = inserted ? Role::kLeader : Role::kFollower;
    miss.flight = it->second;
    if (!inserted)
        ++counters_.joins;
    return miss;
}

ResultCache::Peek
ResultCache::peek(const std::string& key)
{
    std::lock_guard<std::mutex> lock(mu_);
    Peek out;
    auto it = entries_.find(key);
    if (it == entries_.end())
        return out;
    out.value = it->second.value;
    out.fingerprint = it->second.fingerprint;
    out.fresh = !expired(it->second, clock_->now_ns());
    if (!out.fresh)
        ++counters_.stale_serves;
    return out;
}

void
ResultCache::publish(const std::string& key,
                     const std::shared_ptr<Inflight>& flight,
                     support::Status status,
                     std::shared_ptr<const ResultValue> value,
                     std::uint64_t fingerprint)
{
    // Chaos site: an injected error loses the insertion (not the
    // answer), a delay fault slows publication.
    bool drop_insert = false;
    if (status.is_ok() && value != nullptr) {
        try {
            support::FaultInjector::global().at("serve.cache.insert");
        } catch (const support::FaultInjectedError&) {
            drop_insert = true;
        }
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        // Retire the in-flight slot so the next identical query becomes a
        // hit (on success) or a fresh leader (on failure) — never a
        // follower of a finished flight.
        if (auto it = inflight_.find(key);
            it != inflight_.end() && it->second == flight)
            inflight_.erase(it);

        if (status.is_ok() && value != nullptr && !drop_insert) {
            const std::size_t bytes = result_bytes(*value) + key.size();
            if (bytes <= capacity_bytes_) {
                // Replace an existing (possibly expired) entry in place.
                if (auto it = entries_.find(key); it != entries_.end()) {
                    bytes_ -= it->second.bytes;
                    lru_.erase(it->second.lru_it);
                    entries_.erase(it);
                }
                while (bytes_ + bytes > capacity_bytes_ && !lru_.empty()) {
                    const std::string& victim = lru_.back();
                    auto vit = entries_.find(victim);
                    bytes_ -= vit->second.bytes;
                    entries_.erase(vit);
                    lru_.pop_back();
                    ++counters_.evictions;
                }
                lru_.push_front(key);
                entries_[key] = Entry{value, fingerprint, bytes,
                                      clock_->now_ns(), lru_.begin()};
                bytes_ += bytes;
                ++counters_.insertions;
            }
        }
    }
    {
        std::lock_guard<std::mutex> lock(flight->mu);
        flight->status = std::move(status);
        flight->value =
            flight->status.is_ok() ? std::move(value) : nullptr;
        flight->fingerprint = fingerprint;
        flight->done = true;
    }
    flight->cv.notify_all();
}

ResultCache::Stats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Stats out = counters_;
    out.entries = entries_.size();
    out.bytes = bytes_;
    return out;
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    lru_.clear();
    bytes_ = 0;
}

} // namespace gm::serve
