/**
 * @file
 * One timer thread for every request deadline in a server.
 *
 * arm() registers a (deadline, CancelToken) pair on a min-heap; the timer
 * thread sleeps until the earliest deadline and raises expired tokens.
 * Raising is the whole job — the same cooperative-cancellation machinery
 * the watchdog uses (parallel primitives and worklists polling the
 * thread's token) unwinds the kernel, and the serve worker classifies the
 * resulting CancelledError as DEADLINE_EXCEEDED.
 *
 * There is deliberately no disarm: tokens are heap-owned (shared_ptr), so
 * raising one after its request already completed is a harmless store to
 * an atomic nobody reads.  This keeps arm() O(log n) and lock-light on
 * the submit path.
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "gm/support/watchdog.hh"

namespace gm::serve
{

/** Shared deadline timer; arm() is thread-safe. */
class DeadlineScheduler
{
  public:
    DeadlineScheduler();
    ~DeadlineScheduler();

    DeadlineScheduler(const DeadlineScheduler&) = delete;
    DeadlineScheduler& operator=(const DeadlineScheduler&) = delete;

    /** Raise @p token once Timer::now_ns() reaches @p deadline_ns. */
    void arm(std::int64_t deadline_ns,
             std::shared_ptr<support::CancelToken> token);

  private:
    struct Armed
    {
        std::int64_t deadline_ns = 0;
        std::shared_ptr<support::CancelToken> token;
        bool
        operator>(const Armed& other) const
        {
            return deadline_ns > other.deadline_ns;
        }
    };

    void loop();

    std::mutex mu_;
    std::condition_variable cv_;
    std::priority_queue<Armed, std::vector<Armed>, std::greater<Armed>>
        heap_;
    bool stop_ = false;
    std::thread thread_;
};

} // namespace gm::serve
