/**
 * @file
 * Client-side retry policy with a server-wide retry budget.
 *
 * Server::query() retries only statuses the serving layer marks
 * transient — a shed admission (RESOURCE_EXHAUSTED), an open breaker
 * (UNAVAILABLE), or an abandoned single-flight leader (CANCELLED, which
 * query() can only see for that reason: the caller holds the only
 * handle).  Deterministic outcomes (INVALID_INPUT, kernel errors,
 * DEADLINE_EXCEEDED — the budget is spent) are never retried.
 *
 * Backoff is capped exponential with deterministic jitter: attempt k
 * sleeps initial * multiplier^(k-1), clamped to max, scaled by a factor
 * in [0.5, 1.5) drawn from SplitMix64(seed, attempt) — reproducible for
 * a given policy seed, decorrelated across attempts.
 *
 * The budget is the anti-amplification control: a token bucket owned by
 * the server.  Every *fresh* query deposits `ratio` tokens (capped);
 * every retry withdraws one.  During an outage the fresh-query stream
 * keeps depositing at ratio x arrival rate, so retry traffic is bounded
 * at ~ratio of offered load no matter how aggressive per-call policies
 * are — retries can speed recovery, never pile onto the collapse.
 */
#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>

#include "gm/support/status.hh"
#include "gm/telemetry/registry.hh"

namespace gm::serve
{

/** Per-call retry knobs (attempts + backoff shape). */
struct RetryPolicy
{
    /** Total attempts including the first; 1 = no retries. */
    int max_attempts = 1;
    /** Backoff before retry 1 (then multiplied per attempt). */
    std::int64_t initial_backoff_ms = 5;
    /** Exponential growth factor per attempt. */
    double backoff_multiplier = 2.0;
    /** Backoff ceiling. */
    std::int64_t max_backoff_ms = 200;
    /** Jitter seed; same seed -> same backoff sequence. */
    std::uint64_t seed = 0;
};

/** True if @p code is transient from the serving layer's point of view. */
bool retryable_status(support::StatusCode code);

/** Backoff before attempt @p next_attempt (2-based), jittered. */
std::int64_t backoff_ms(const RetryPolicy& policy, int next_attempt);

/**
 * Server-wide token bucket bounding total retry volume.  Thread-safe.
 */
class RetryBudget
{
  public:
    /** @p ratio tokens deposited per fresh query; bucket holds at most
     *  @p cap tokens.  ratio <= 0 disables retries entirely. */
    RetryBudget(double ratio, double cap)
        : ratio_(ratio), cap_(cap), tokens_(cap)
    {
    }

    /** Publish the live token level to @p gauge on every change (the
     *  owning Server points this at gm_serve_retry_budget_tokens). */
    void
    attach_gauge(telemetry::Gauge* gauge)
    {
        std::lock_guard<std::mutex> lock(mu_);
        gauge_ = gauge;
        if (gauge_ != nullptr)
            gauge_->set(tokens_);
    }

    /** A fresh (non-retry) query arrived: deposit. */
    void
    deposit()
    {
        std::lock_guard<std::mutex> lock(mu_);
        tokens_ = std::min(cap_, tokens_ + ratio_);
        if (gauge_ != nullptr)
            gauge_->set(tokens_);
    }

    /** Try to pay for one retry; false = budget exhausted, don't retry. */
    bool
    withdraw()
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (tokens_ < 1.0)
            return false;
        tokens_ -= 1.0;
        if (gauge_ != nullptr)
            gauge_->set(tokens_);
        return true;
    }

    double
    tokens() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return tokens_;
    }

  private:
    const double ratio_;
    const double cap_;
    mutable std::mutex mu_;
    double tokens_;
    telemetry::Gauge* gauge_ = nullptr; ///< optional live token mirror
};

} // namespace gm::serve
