/**
 * @file
 * Per-cell circuit breakers for gm::serve.
 *
 * A "cell" is (framework, kernel, graph) — the unit that fails together:
 * a kernel bug, a poisoned graph artifact, or an injected fault storm
 * takes out a cell, not the whole server.  Each cell runs the classic
 * three-state machine:
 *
 *     closed ──(>= failure_threshold failures within window_ns)──> open
 *     open ──(cooldown_ns elapsed)──> half-open
 *     half-open ──(close_successes consecutive probe successes)──> closed
 *     half-open ──(any probe failure)──> open          (cooldown restarts)
 *
 * While open, admit() fast-fails (kReject -> UNAVAILABLE at the API)
 * without burning a worker on a cell that keeps failing.  Half-open
 * admits at most `half_open_probes` concurrent probe requests; everything
 * else keeps fast-failing until the probes decide.  Failures are counted
 * in a sliding window of timestamps, so a slow trickle of occasional
 * errors never opens the breaker — only a burst does.
 *
 * Time comes from an injected support::Clock, so tests step the machine
 * deterministically with a ManualClock; the server passes
 * Clock::system().  All methods are thread-safe (one mutex; state per
 * cell is tiny).  Transitions are recorded and drained by the server
 * into its metrics JSONL stream and obs counters.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "gm/support/clock.hh"

namespace gm::serve
{

/** Breaker tuning; defaults open fast and probe cautiously. */
struct BreakerOptions
{
    /** Failures within window_ns that open a closed breaker. */
    int failure_threshold = 5;
    /** Sliding failure window. */
    std::int64_t window_ns = 10'000'000'000; // 10 s
    /** Open -> half-open after this cooldown. */
    std::int64_t cooldown_ns = 1'000'000'000; // 1 s
    /** Concurrent probe executions allowed while half-open. */
    int half_open_probes = 1;
    /** Consecutive probe successes that close a half-open breaker. */
    int close_successes = 2;
};

/** Registry of per-cell breaker state machines. */
class CircuitBreaker
{
  public:
    enum class State { kClosed, kOpen, kHalfOpen };

    /** admit() verdict for one request. */
    enum class Gate
    {
        kAllow,  ///< closed: execute normally
        kProbe,  ///< half-open: execute as a probe (report the outcome
                 ///< with probe=true, or release() if never executed)
        kReject, ///< open (or half-open with all probe slots taken):
                 ///< fast-fail without executing
    };

    /** One recorded state change, in transition order. */
    struct Transition
    {
        std::string cell;
        State from = State::kClosed;
        State to = State::kClosed;
        std::int64_t at_ns = 0;
        std::uint64_t seq = 0; ///< global transition sequence number
    };

    explicit CircuitBreaker(BreakerOptions options,
                            support::Clock* clock = nullptr);

    /** Gate one request for @p cell (advances open -> half-open). */
    Gate admit(const std::string& cell);

    /** Record an execution outcome.  @p probe mirrors what admit()
     *  returned for this request. */
    void record_success(const std::string& cell, bool probe);
    void record_failure(const std::string& cell, bool probe);

    /** Release a probe slot whose request never executed (cancelled or
     *  expired in the queue); state is otherwise unchanged. */
    void release(const std::string& cell, bool probe);

    State state(const std::string& cell) const;

    /** Cells currently not closed (open or half-open). */
    std::size_t open_cells() const;

    /** Transitions recorded since the last drain, oldest first. */
    std::vector<Transition> drain_transitions();

    /** Total transitions ever recorded (drained or not). */
    std::uint64_t transition_count() const;

    static const char* to_string(State state);

  private:
    struct Cell
    {
        State state = State::kClosed;
        std::deque<std::int64_t> failures_ns; ///< sliding window
        std::int64_t opened_at_ns = 0;
        int probes_in_flight = 0;
        int probe_successes = 0;
    };

    /** Callers hold mu_. */
    Cell& cell_for(const std::string& name);
    void transition(const std::string& name, Cell& cell, State to,
                    std::int64_t now_ns);
    void prune(Cell& cell, std::int64_t now_ns) const;

    BreakerOptions options_;
    support::Clock* clock_;

    mutable std::mutex mu_;
    std::unordered_map<std::string, Cell> cells_;
    std::vector<Transition> transitions_;
    std::uint64_t transition_seq_ = 0;
};

} // namespace gm::serve
