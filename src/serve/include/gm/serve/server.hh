/**
 * @file
 * gm::serve::Server — an in-process concurrent graph-query service over a
 * shared DatasetSuite, with defined behavior under overload and faults.
 *
 * Architecture (one paragraph): submit() validates a Request against the
 * suite and framework registry, stamps it, gates it through the cell's
 * circuit breaker, and offers it to the AdmissionController — per
 * priority-class quotas, plus deadline-aware expiry that sheds requests
 * whose deadline cannot be met at the current drain rate.  Admission
 * never blocks: refused work is answered immediately, either degraded
 * from the result cache (allow_stale) or with RESOURCE_EXHAUSTED /
 * UNAVAILABLE.  A fixed pool of worker threads drains the queue
 * strict-priority; each request declares an execution width, and a
 * server-wide lane budget (defaulting to the par::ThreadPool size) gates
 * how many lanes may execute kernels at once — a leader acquires its
 * width from the budget, runs the kernel under a par::LaneLease of that
 * many lanes, and releases them, so concurrent requests execute genuinely
 * in parallel on disjoint lane sets while every result stays
 * bit-identical to a serial run (kernels are order-deterministic; see
 * DESIGN.md section 13).  Requests with deadlines are armed on
 * a shared DeadlineScheduler whose timer raises the request's
 * CancelToken; kernels unwind cooperatively and the worker reports
 * DEADLINE_EXCEEDED (or CANCELLED for caller-initiated cancels) without
 * poisoning the store or later requests.  Identical queries dedupe
 * through the ResultCache's single-flight slots; completed results are
 * served zero-copy from its LRU; execution failures feed the cell's
 * breaker, which fast-fails a sick cell and half-opens with probes.
 * query() layers a jittered-backoff RetryPolicy over submit()+wait(),
 * bounded by a server-wide retry budget so retries never amplify an
 * outage.  Every request records a detached gm::obs trace session
 * summarized to a per-request metrics JSONL record; breaker transitions
 * are appended to the same stream.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "gm/dyn/overlay.hh"
#include "gm/harness/dataset.hh"
#include "gm/harness/framework.hh"
#include "gm/obs/trace.hh"
#include "gm/plan/plan.hh"
#include "gm/serve/admission.hh"
#include "gm/serve/breaker.hh"
#include "gm/serve/cache.hh"
#include "gm/serve/deadline.hh"
#include "gm/serve/request.hh"
#include "gm/serve/retry.hh"
#include "gm/support/clock.hh"
#include "gm/support/status.hh"
#include "gm/telemetry/slo.hh"

namespace gm::telemetry
{
class MetricsListener;
} // namespace gm::telemetry

namespace gm::serve
{

namespace detail
{
struct DynState;
struct LaneGate;
struct PlanState;
struct RequestState;
struct ServeTelemetry;
} // namespace detail

/** Server construction knobs. */
struct ServerOptions
{
    /** Worker threads = maximum concurrently executing requests. */
    int workers = 4;
    /** Total lanes the server may hand to executing kernels at once;
     *  request widths are clamped to it and leaders block until their
     *  width fits.  0 derives max(workers, par::ThreadPool size): width-1
     *  traffic keeps full workers-way concurrency, and one wide request
     *  can use every core (GM_THREADS). */
    int lane_budget = 0;
    /** Total admission-queue bound across all priority classes. */
    std::size_t queue_capacity = 64;
    /** Per-class admission quotas (indexed by Priority).  All-zero (the
     *  default) derives {total, total/2, total/4} from queue_capacity —
     *  interactive may fill the queue, best-effort sheds first. */
    std::array<std::size_t, kPriorityClasses> class_capacity = {0, 0, 0};
    /** Result-cache byte budget; 0 disables caching (single-flight dedup
     *  of concurrent identical queries still applies). */
    std::size_t cache_capacity_bytes = 64ull << 20;
    /** Result-cache TTL in ms; 0 = entries never expire.  Expired
     *  entries stop being hits but remain peek()-able for degraded
     *  (allow_stale) serving until replaced or evicted. */
    std::int64_t cache_ttl_ms = 0;
    /** Per-cell circuit breakers; set enable_breaker = false to run
     *  every request regardless of cell health. */
    bool enable_breaker = true;
    BreakerOptions breaker;
    /** Default RetryPolicy for query(); max_attempts = 1 disables. */
    RetryPolicy retry;
    /** Retry-budget token bucket: tokens deposited per fresh query and
     *  the bucket cap.  Bounds server-wide retry volume to roughly
     *  ratio x offered load during an outage. */
    double retry_budget_ratio = 0.1;
    double retry_budget_cap = 10;
    /** Time source for breaker cooldowns and cache TTLs (request
     *  timestamps and deadlines always use the steady Timer clock).
     *  Null = Clock::system(); tests may inject a ManualClock. */
    support::Clock* clock = nullptr;
    /** Append one MetricsRecord JSONL line per served request (plus one
     *  "serve.breaker" line per breaker transition, one "serve.refusal"
     *  line per refused attempt, and "serve.slo.burn" lines on SLO
     *  monitor transitions); "" = off. */
    std::string metrics_path;
    /** Register serve metrics in telemetry::Registry::global() and keep
     *  the registry enabled for the server's lifetime.  Counters are
     *  process-wide and cumulative: two servers in one process share
     *  (and both advance) the same series. */
    bool enable_telemetry = true;
    /** Serve the Prometheus-style text exposition from a blocking TCP
     *  listener on 127.0.0.1:<metrics_port>.  -1 = off; 0 = pick an
     *  ephemeral port (read it back with Server::metrics_port()). */
    int metrics_port = -1;
    /** Append one {"kind":"serve.telemetry"} registry snapshot line
     *  every telemetry_flush_ms (crash-safe JSONL); "" = off. */
    std::string telemetry_path;
    int telemetry_flush_ms = 250;
    /** SLO monitor targets (availability burn rate + optional p99);
     *  always evaluated — gauges and burn records only surface through
     *  telemetry/metrics streams when those are configured. */
    telemetry::SloOptions slo;
    /** Compact the gm::dyn overlay into a fresh CSR generation after
     *  every N applied batches per graph (1 = every mutate() call bumps
     *  the generation; 0 = never compact, deltas accumulate and queries
     *  keep reading the merged view's base generation). */
    int dyn_compact_every = 1;
    /** Dirty-set fraction (|touched vertices| / n) above which the
     *  incremental kernel maintainers fall back to full recompute. */
    double dyn_full_threshold = 0.05;
};

/** Outcome of one Server::mutate() batch, for callers and tests. */
struct MutationOutcome
{
    /** Store generation current after the mutation (bumped iff the batch
     *  changed the graph and this call compacted). */
    std::uint64_t generation = 0;
    std::size_t requested = 0;   ///< mutations submitted in the batch
    eid_t inserted_arcs = 0;     ///< stored arcs that became live
    eid_t deleted_arcs = 0;      ///< stored arcs that died
    std::size_t dirty = 0;       ///< vertices whose adjacency changed
    double dirty_fraction = 0;   ///< dirty / n
    bool compacted = false;      ///< folded into a fresh CSR generation
    /** Incremental-vs-full decisions for the maintained kernels (false =
     *  fell back to full recompute; meaningless when nothing changed). */
    bool cc_incremental = false;
    bool pr_incremental = false;
    double mutate_seconds = 0;   ///< apply + maintain + compact wall time
};

/**
 * One query plan: a gm::plan DAG to execute against a named graph.  The
 * server executes independent DAG nodes concurrently under the same lane
 * budget that gates single-kernel queries, caches every node's value in
 * the ResultCache keyed by (structural sub-plan fingerprint, graph
 * generation), and single-flights identical sub-plans across
 * concurrently submitted plans — a sub-DAG shared by two plans executes
 * its kernels exactly once.
 */
struct PlanRequest
{
    /** Framework display name or lowercase alias ("GAP", "gkc", ...). */
    std::string framework = "GAP";
    /** Dataset name within the server's suite ("Road", "Kron", ...). */
    std::string graph;
    harness::Mode mode = harness::Mode::kBaseline;
    /** The DAG.  Must pass plan::Plan::validate(). */
    plan::Plan plan;
    /** Per-node wall-clock budget measured from the moment the node
     *  starts (queue wait for lanes included); 0 disables.  A node that
     *  overruns fails with DEADLINE_EXCEEDED and fails the plan. */
    int node_deadline_ms = 0;
    /** Execution width per traversal node (kernel/batch); aggregations
     *  always run at width 1.  Clamped to the server's lane budget.
     *  Width never changes any node's payload. */
    int width = 1;
    /** Plan-scoped trace id; 0 = mint at submit.  Stamped on the plan's
     *  JSONL record.  Excluded from every cache key. */
    std::uint64_t trace_id = 0;
};

/** One plan node's outcome. */
struct PlanNodeResult
{
    support::Status status = support::Status::ok();
    /** Immutable payload, shared with the cache (null on failure and for
     *  nodes skipped after the first failure). */
    std::shared_ptr<const ResultValue> value;
    /** result_fingerprint() of *value (0 when value is null). */
    std::uint64_t fingerprint = 0;
    /** Served from a cached sub-plan result without executing. */
    bool cache_hit = false;
    /** Joined an identical in-flight node from another plan. */
    bool shared_execution = false;
    /** Kernel/aggregation execution time; 0 for hits and followers. */
    double execute_seconds = 0;
};

/** A completed plan: per-node outcomes plus plan-wide metadata. */
struct PlanResult
{
    /** Indexed by plan node id. */
    std::vector<PlanNodeResult> nodes;
    std::uint64_t trace_id = 0;
    /** submit_plan()-to-completion wall time. */
    double service_seconds = 0;
    int executed = 0;       ///< nodes this plan ran itself (leaders)
    int cache_hits = 0;     ///< nodes answered from the result cache
    int shared = 0;         ///< nodes joined from another plan's flight
    int fused_sweeps = 0;   ///< bit-parallel multi-source sweeps run
    int sources_fused = 0;  ///< sources covered by those sweeps
    /** Oldest data generation contributing to any node's answer.  When
     *  no mutate() lands mid-plan (the common case) every node shares
     *  it; a node whose inputs predate a concurrent compaction is tagged
     *  with (and propagates) the inputs' generation, so this reports the
     *  staleness bound of the whole answer set. */
    std::uint64_t generation = 0;
};

/**
 * Point-in-time server counters (cache figures folded in).  The snapshot
 * is coherent: it is taken under the same lock every mutation holds, so
 * the invariants hold in any snapshot, mid-flight or not:
 *
 *     completed == succeeded + deadline_exceeded + cancelled + failed
 *     submitted >= completed + queue_depth
 *     degraded  <= succeeded
 */
struct ServerStats
{
    std::uint64_t submitted = 0;  ///< accepted (handle returned), incl.
                                  ///< degraded answers served at submit
    std::uint64_t shed = 0;       ///< refused: queue/class full or
                                  ///< deadline infeasible
    std::uint64_t infeasible = 0; ///< subset of shed: deadline-aware
                                  ///< queued-expiry at submit
    std::uint64_t unavailable = 0; ///< refused: circuit breaker open
    std::uint64_t completed = 0;  ///< finished, any status
    std::uint64_t succeeded = 0;
    std::uint64_t degraded = 0;   ///< subset of succeeded: stale answers
    std::uint64_t deadline_exceeded = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t failed = 0;     ///< kernel error / injected fault
    std::uint64_t executions = 0; ///< kernels actually run (leaders)
    std::uint64_t lanes_granted = 0; ///< cumulative lanes across
                                     ///< executions (mean = /executions)
    std::uint64_t cache_hits = 0;
    std::uint64_t single_flight_joins = 0;
    std::uint64_t retries = 0;    ///< retry attempts issued by query()
    std::uint64_t retry_denied = 0; ///< retries blocked by the budget
    std::uint64_t mutations = 0;  ///< mutate() batches applied
    std::uint64_t mutation_inserted_arcs = 0;
    std::uint64_t mutation_deleted_arcs = 0;
    std::uint64_t compactions = 0; ///< CSR generations installed
    std::uint64_t dyn_incremental = 0; ///< maintainer repairs in place
    std::uint64_t dyn_full = 0;        ///< maintainer full recomputes
    std::uint64_t plans_submitted = 0; ///< submit_plan() accepted
    std::uint64_t plans_completed = 0; ///< finished, any status
    std::uint64_t plans_failed = 0;    ///< subset: any node failed
    std::uint64_t plan_nodes = 0;      ///< nodes across submitted plans
    std::uint64_t plan_nodes_executed = 0; ///< nodes run as leaders
    std::uint64_t plan_node_cache_hits = 0; ///< nodes served from cache
    std::uint64_t plan_nodes_shared = 0; ///< follower joins across plans
    std::uint64_t plan_fused_sweeps = 0; ///< multi-source sweeps run
    std::uint64_t plan_sources_fused = 0; ///< sources covered by fusion
    std::uint64_t breaker_transitions = 0;
    std::size_t breaker_open_cells = 0;
    std::size_t queue_depth = 0;
    std::size_t cache_entries = 0;
    std::size_t cache_bytes = 0;
};

/**
 * The service.  Owns its workers and deadline timer; the DatasetSuite's
 * stores are shared (copies of the shared_ptrs), so several servers — or
 * a server and a sweep — can serve the same graphs concurrently.
 */
class Server
{
  public:
    /** A submitted request; wait() blocks until it completes. */
    class Handle
    {
      public:
        Handle() = default;

        /** Block until the request finishes; the result or the failure.
         *  Const: it reads the shared request state, not the handle. */
        support::StatusOr<QueryResult> wait() const;

        /**
         * wait() with a bound: DEADLINE_EXCEEDED after @p timeout_ms if
         * the request has not completed.  The request itself is NOT
         * consumed or cancelled — it keeps executing, and a later
         * wait()/wait_for() can still collect it.
         */
        support::StatusOr<QueryResult> wait_for(int timeout_ms) const;

        /** Request cooperative cancellation (wait() then reports
         *  CANCELLED unless the request already finished). */
        void cancel() const;

        bool valid() const { return state_ != nullptr; }

      private:
        friend class Server;
        explicit Handle(std::shared_ptr<detail::RequestState> state)
            : state_(std::move(state))
        {
        }

        std::shared_ptr<detail::RequestState> state_;
    };

    /** A submitted plan; wait() blocks until every node settles. */
    class PlanHandle
    {
      public:
        PlanHandle() = default;

        /** Block until the plan finishes.  A successful plan returns
         *  the PlanResult; a plan whose first failing node has status S
         *  reports S, with the node id and operator folded into the
         *  message. */
        support::StatusOr<PlanResult> wait() const;

        /** Cooperatively cancel every node still queued or executing;
         *  already-settled node values are kept. */
        void cancel() const;

        bool valid() const { return state_ != nullptr; }

      private:
        friend class Server;
        explicit PlanHandle(std::shared_ptr<detail::PlanState> state)
            : state_(std::move(state))
        {
        }

        std::shared_ptr<detail::PlanState> state_;
    };

    Server(harness::DatasetSuite suite,
           std::vector<harness::Framework> frameworks,
           ServerOptions options = {});
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /**
     * Validate, breaker-gate, and enqueue @p request.  Never blocks:
     * returns kInvalidInput for an unknown framework/graph or
     * out-of-range source, kResourceExhausted when admission refuses
     * (queue/class full, deadline infeasible, or shutting down),
     * kUnavailable when the cell's breaker is open — unless the refused
     * request can be answered from the cache (always for a fresh entry
     * on the breaker path, allow_stale for anything else), in which case
     * the returned Handle is already complete.
     */
    support::StatusOr<Handle> submit(Request request);

    /** submit() + wait() under the server's default RetryPolicy. */
    support::StatusOr<QueryResult> query(const Request& request);

    /** submit() + wait() with explicit retries: transient failures
     *  (shed, breaker-open, abandoned leader) are retried with jittered
     *  exponential backoff, bounded by the server-wide retry budget. */
    support::StatusOr<QueryResult> query(const Request& request,
                                         const RetryPolicy& policy);

    /**
     * Apply one batch of edge mutations to @p graph between queries.
     * Blocks until every executing leader finishes (the mutation
     * quiesces kernel execution by holding the entire lane budget), then
     * applies the batch to the graph's gm::dyn overlay, repairs the
     * maintained kernels (CC and PageRank — incrementally when the dirty
     * set is small and the batch is insert-only for CC, full recompute
     * otherwise), and per dyn_compact_every folds the overlay into a
     * fresh CSR generation installed into the store.  Queries submitted
     * concurrently are unaffected except for waiting: cached answers
     * from older generations stop being fresh hits (they remain
     * allow_stale fodder, served as degraded) and the next fresh query
     * recomputes against the new generation.
     *
     * Returns kInvalidInput for an unknown graph or an out-of-range
     * endpoint (the batch is rejected whole — nothing applied), and
     * kResourceExhausted after shutdown().
     */
    support::StatusOr<MutationOutcome>
    mutate(const std::string& graph, const dyn::MutationBatch& batch);

    /**
     * Validate and launch @p request's plan.  Returns kInvalidInput for
     * an unknown framework/graph, a malformed DAG, or an out-of-range
     * source, and kResourceExhausted after shutdown(); otherwise the
     * plan runs asynchronously on its own driver thread: each wave of
     * ready nodes executes concurrently, traversal nodes acquire their
     * width from the same lane budget single-kernel queries use, and
     * every node value is published to the ResultCache keyed by
     * (structural sub-plan fingerprint, graph generation) — so identical
     * sub-plans across concurrent submissions single-flight and execute
     * exactly once, and mutate()'s generation bump invalidates plan
     * entries exactly like query entries.
     */
    support::StatusOr<PlanHandle> submit_plan(PlanRequest request);

    /** submit_plan() + wait(). */
    support::StatusOr<PlanResult> run_plan(const PlanRequest& request);

    /**
     * Coherent point-in-time counters: the snapshot is assembled under
     * the same stats mutex every mutation holds, so the ServerStats
     * invariants hold in any snapshot, mid-storm included.  This is the
     * one sanctioned way to read server counters.
     */
    ServerStats stats_snapshot() const;

    /** Alias for stats_snapshot(), kept for older call sites. */
    ServerStats
    stats() const
    {
        return stats_snapshot();
    }

    /** Actual metrics-exposition port (resolves metrics_port = 0 to the
     *  ephemeral port chosen at bind); -1 when the listener is off or
     *  failed to bind. */
    int metrics_port() const;

    /** Evaluate the SLO monitor now: rolling availability, multi-window
     *  burn rates, firing state.  Updates gauges and appends a
     *  serve.slo.burn record on a fire/clear transition. */
    telemetry::SloEvaluation slo_evaluation();

    /** The cell breaker registry (read-only observers for tools/tests). */
    CircuitBreaker& breaker() { return breaker_; }

    /** Stop accepting work, drain the queue, join the workers.
     *  Idempotent; the destructor calls it. */
    void shutdown();

  private:
    /** All mutable counters behind one lock; see ServerStats. */
    struct Counters
    {
        std::uint64_t submitted = 0;
        std::uint64_t shed = 0;
        std::uint64_t infeasible = 0;
        std::uint64_t unavailable = 0;
        std::uint64_t completed = 0;
        std::uint64_t succeeded = 0;
        std::uint64_t degraded = 0;
        std::uint64_t deadline_exceeded = 0;
        std::uint64_t cancelled = 0;
        std::uint64_t failed = 0;
        std::uint64_t executions = 0;
        std::uint64_t lanes_granted = 0;
        std::uint64_t cache_hits = 0;
        std::uint64_t single_flight_joins = 0;
        std::uint64_t retries = 0;
        std::uint64_t retry_denied = 0;
        std::uint64_t mutations = 0;
        std::uint64_t mutation_inserted_arcs = 0;
        std::uint64_t mutation_deleted_arcs = 0;
        std::uint64_t compactions = 0;
        std::uint64_t dyn_incremental = 0;
        std::uint64_t dyn_full = 0;
        std::uint64_t plans_submitted = 0;
        std::uint64_t plans_completed = 0;
        std::uint64_t plans_failed = 0;
        std::uint64_t plan_nodes = 0;
        std::uint64_t plan_nodes_executed = 0;
        std::uint64_t plan_node_cache_hits = 0;
        std::uint64_t plan_nodes_shared = 0;
        std::uint64_t plan_fused_sweeps = 0;
        std::uint64_t plan_sources_fused = 0;
        std::size_t queue_depth = 0;
    };

    void worker_loop();
    void process(const std::shared_ptr<detail::RequestState>& state);
    /** Block until @p width lanes fit in the budget and charge them;
     *  false (nothing charged) if the request is cancelled or its
     *  deadline passes while waiting.  Event-driven: woken by
     *  release_lanes(), Handle::cancel(), and shutdown(), with the
     *  request deadline as the only timed bound. */
    bool acquire_lanes(const detail::RequestState& state, int width);
    void release_lanes(int width);
    /** Quiesce kernel execution: block until no leader holds lanes, then
     *  charge the entire budget (mutations run exclusively). */
    void acquire_all_lanes();
    /** {"kind":"serve.mutation"} JSONL record for one applied batch. */
    void write_mutation_record(const std::string& graph,
                               const MutationOutcome& outcome);
    support::Status wait_for_leader(detail::RequestState& state,
                                    ResultCache::Inflight& flight,
                                    QueryResult& result);
    support::Status classify_cancel(const detail::RequestState& state) const;
    void complete(const std::shared_ptr<detail::RequestState>& state,
                  support::Status status, QueryResult result);
    /** Fill @p result from any cached entry for the state's key; true if
     *  one existed (degraded when past TTL, cache_hit when fresh). */
    bool try_cache_fallback(const detail::RequestState& state,
                            QueryResult& result);
    /** Breaker bookkeeping for a leader outcome (or non-execution). */
    void record_cell_outcome(const detail::RequestState& state,
                             const support::Status& status, bool executed);
    void write_metrics_record(const detail::RequestState& state,
                              const obs::TraceSession& session);
    /** Append drained breaker transitions to the metrics stream. */
    void flush_breaker_transitions();
    /** Fresh nonzero request-scoped trace id (SplitMix64 over a
     *  per-server sequence). */
    std::uint64_t mint_trace_id();
    /** {"kind":"serve.refusal"} record for a refused attempt (or one
     *  answered degraded at submit), so retried requests leave one
     *  trace-stamped line per attempt even when nothing executed. */
    void write_refusal_record(const detail::RequestState& state,
                              const support::Status& status,
                              bool served_degraded);
    /** Feed one finished request into the SLO monitor and evaluate it
     *  at bucket granularity. */
    void observe_slo(bool answered, bool fresh, std::int64_t latency_ns);
    /** evaluate + gauge updates + burn-record on transition. */
    telemetry::SloEvaluation evaluate_slo(std::int64_t now_ns);
    void write_slo_burn_record(const telemetry::SloEvaluation& ev);
    /** One {"kind":"serve.telemetry"} JSONL snapshot line. */
    void write_telemetry_snapshot();
    void telemetry_flush_loop();

    // Query-plan execution (plan_exec.cc).
    /** Driver body (one thread per submitted plan): runs each wave of
     *  ready nodes concurrently, then settles the PlanResult. */
    void plan_driver(const std::shared_ptr<detail::PlanState>& state);
    /** Serve one plan node — cache hit, single-flight join, or leader
     *  execution under the lane budget; fills state.node_results[id]. */
    void plan_run_node(detail::PlanState& state, int id);
    /** acquire_lanes for a plan node: bounded by the node's deadline and
     *  woken by release_lanes / PlanHandle::cancel / shutdown. */
    bool plan_acquire_lanes(const detail::PlanState& state,
                            const support::CancelToken& node_token,
                            std::int64_t deadline_ns, int width);
    /** {"kind":"serve.plan"} JSONL record for one finished plan. */
    void write_plan_record(detail::PlanState& state);
    /** Join driver threads whose plans have settled (all of them when
     *  @p all — shutdown path; otherwise only finished ones, called on
     *  submit_plan to bound the runner list). */
    void reap_plan_runners(bool all);

    harness::DatasetSuite suite_;
    std::vector<harness::Framework> frameworks_;
    ServerOptions options_;
    support::Clock* clock_;
    ResultCache cache_;
    CircuitBreaker breaker_;
    RetryBudget retry_budget_;
    DeadlineScheduler deadlines_;

    mutable std::mutex queue_mu_;
    std::condition_variable queue_cv_;
    AdmissionController admission_;
    bool shutdown_ = false;
    /** Total lanes leaders may hold at once; const after construction.
     *  Invariant: 0 <= lane_gate_->in_use <= lane_budget_. */
    int lane_budget_ = 1;
    /** Core-budget scheduler state (lanes charged to currently executing
     *  leaders) plus the cv lane waiters block on.  shared_ptr-owned by
     *  the server AND by every RequestState, so Handle::cancel() can wake
     *  waiters through it without ever dereferencing the server — a
     *  handle may outlive the Server. */
    std::shared_ptr<detail::LaneGate> lane_gate_;

    std::mutex metrics_mu_; ///< serializes JSONL appends across workers

    /** Per-graph dynamic overlays + kernel maintainers, created lazily on
     *  first mutate().  dyn_mu_ serializes mutations; readers never take
     *  it (they go through the store, quiesced by the lane budget). */
    std::mutex dyn_mu_;
    std::unordered_map<std::string, std::unique_ptr<detail::DynState>>
        dyn_;
    /** Largest generation installed by any graph's compactions — the
     *  monotone gm_dyn_generation gauge value.  Guarded by dyn_mu_. */
    std::uint64_t dyn_generation_peak_ = 0;

    mutable std::mutex stats_mu_; ///< guards counters_ as one snapshot
    Counters counters_;

    /** Pre-acquired registry handles (null when telemetry disabled). */
    std::unique_ptr<detail::ServeTelemetry> tm_;
    telemetry::SloMonitor slo_;
    std::atomic<std::int64_t> last_slo_eval_ns_{0};
    std::unique_ptr<telemetry::MetricsListener> listener_;

    /** Trace-id minting: a per-server random base xor a sequence. */
    std::uint64_t trace_base_ = 0;
    std::atomic<std::uint64_t> trace_seq_{0};

    /** Plan driver threads, one per in-flight plan.  Reaped on the next
     *  submit_plan and joined in shutdown(); never detached, so plan
     *  execution cannot outlive the server's datasets. */
    std::mutex plan_mu_;
    struct PlanRunner
    {
        std::thread thread;
        std::shared_ptr<detail::PlanState> state;
    };
    std::vector<PlanRunner> plan_runners_;

    /** Periodic registry -> JSONL snapshot flusher (telemetry_path). */
    std::thread flusher_;
    std::mutex flusher_mu_;
    std::condition_variable flusher_cv_;
    bool flusher_stop_ = false;
    std::uint64_t telemetry_seq_ = 0; ///< snapshot lines written

    std::vector<std::thread> workers_;
};

} // namespace gm::serve
