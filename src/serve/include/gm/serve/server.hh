/**
 * @file
 * gm::serve::Server — an in-process concurrent graph-query service over a
 * shared DatasetSuite.
 *
 * Architecture (one paragraph): submit() validates a Request against the
 * suite and framework registry, stamps it, and either enqueues it on a
 * bounded admission queue or sheds it immediately with RESOURCE_EXHAUSTED
 * — admission never blocks.  A fixed pool of worker threads drains the
 * queue; each worker runs its request's kernel serially on its own thread
 * (par::SerialRegion), so N workers give N-way concurrency across
 * requests while every individual result stays bit-identical to a direct
 * serial framework call.  Requests with deadlines are armed on a shared
 * DeadlineScheduler whose timer raises the request's CancelToken; the
 * kernel unwinds cooperatively via the same polling the watchdog uses and
 * the worker reports DEADLINE_EXCEEDED (or CANCELLED for caller-initiated
 * cancels) without poisoning the store or later requests.  Identical
 * queries dedupe through the ResultCache's single-flight slots, and
 * completed results are served zero-copy from its LRU.  Every request
 * records a detached gm::obs trace session (serve.queue_wait /
 * serve.execute spans) summarized to a per-request metrics JSONL record.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gm/harness/dataset.hh"
#include "gm/harness/framework.hh"
#include "gm/obs/trace.hh"
#include "gm/serve/cache.hh"
#include "gm/serve/deadline.hh"
#include "gm/serve/request.hh"
#include "gm/support/status.hh"

namespace gm::serve
{

namespace detail
{
struct RequestState;
} // namespace detail

/** Server construction knobs. */
struct ServerOptions
{
    /** Worker threads = maximum concurrently executing requests. */
    int workers = 4;
    /** Admission queue bound; a full queue sheds (RESOURCE_EXHAUSTED). */
    std::size_t queue_capacity = 64;
    /** Result-cache byte budget; 0 disables caching (single-flight dedup
     *  of concurrent identical queries still applies). */
    std::size_t cache_capacity_bytes = 64ull << 20;
    /** Append one MetricsRecord JSONL line per served request; "" = off. */
    std::string metrics_path;
};

/** Point-in-time server counters (cache figures folded in). */
struct ServerStats
{
    std::uint64_t submitted = 0;  ///< accepted into the queue
    std::uint64_t shed = 0;       ///< refused: queue full
    std::uint64_t completed = 0;  ///< finished, any status
    std::uint64_t succeeded = 0;
    std::uint64_t deadline_exceeded = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t failed = 0;     ///< kernel error / injected fault
    std::uint64_t executions = 0; ///< kernels actually run (leaders)
    std::uint64_t cache_hits = 0;
    std::uint64_t single_flight_joins = 0;
    std::size_t queue_depth = 0;
    std::size_t cache_entries = 0;
    std::size_t cache_bytes = 0;
};

/**
 * The service.  Owns its workers and deadline timer; the DatasetSuite's
 * stores are shared (copies of the shared_ptrs), so several servers — or
 * a server and a sweep — can serve the same graphs concurrently.
 */
class Server
{
  public:
    /** A submitted request; wait() blocks until it completes. */
    class Handle
    {
      public:
        Handle() = default;

        /** Block until the request finishes; the result or the failure.
         *  Const: it reads the shared request state, not the handle. */
        support::StatusOr<QueryResult> wait() const;

        /** Request cooperative cancellation (wait() then reports
         *  CANCELLED unless the request already finished). */
        void cancel() const;

        bool valid() const { return state_ != nullptr; }

      private:
        friend class Server;
        explicit Handle(std::shared_ptr<detail::RequestState> state)
            : state_(std::move(state))
        {
        }

        std::shared_ptr<detail::RequestState> state_;
    };

    Server(harness::DatasetSuite suite,
           std::vector<harness::Framework> frameworks,
           ServerOptions options = {});
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /**
     * Validate and enqueue @p request.  Never blocks: returns
     * kInvalidInput for an unknown framework/graph or out-of-range
     * source, kResourceExhausted when the admission queue is full or the
     * server is shutting down, and a live Handle otherwise.
     */
    support::StatusOr<Handle> submit(Request request);

    /** submit() + wait() in one call. */
    support::StatusOr<QueryResult> query(const Request& request);

    ServerStats stats() const;

    /** Stop accepting work, drain the queue, join the workers.
     *  Idempotent; the destructor calls it. */
    void shutdown();

  private:
    void worker_loop();
    void process(const std::shared_ptr<detail::RequestState>& state);
    support::Status wait_for_leader(detail::RequestState& state,
                                    ResultCache::Inflight& flight,
                                    QueryResult& result);
    support::Status classify_cancel(const detail::RequestState& state) const;
    void complete(const std::shared_ptr<detail::RequestState>& state,
                  support::Status status, QueryResult result);
    void write_metrics_record(const detail::RequestState& state,
                              const obs::TraceSession& session);

    harness::DatasetSuite suite_;
    std::vector<harness::Framework> frameworks_;
    ServerOptions options_;
    ResultCache cache_;
    DeadlineScheduler deadlines_;

    mutable std::mutex queue_mu_;
    std::condition_variable queue_cv_;
    std::deque<std::shared_ptr<detail::RequestState>> queue_;
    bool shutdown_ = false;

    std::mutex metrics_mu_; ///< serializes JSONL appends across workers

    std::atomic<std::uint64_t> submitted_{0};
    std::atomic<std::uint64_t> shed_{0};
    std::atomic<std::uint64_t> completed_{0};
    std::atomic<std::uint64_t> succeeded_{0};
    std::atomic<std::uint64_t> deadline_exceeded_{0};
    std::atomic<std::uint64_t> cancelled_{0};
    std::atomic<std::uint64_t> failed_{0};
    std::atomic<std::uint64_t> executions_{0};
    std::atomic<std::uint64_t> cache_hits_{0};
    std::atomic<std::uint64_t> single_flight_joins_{0};

    std::vector<std::thread> workers_;
};

} // namespace gm::serve
