/**
 * @file
 * Priority-class admission control for gm::serve.
 *
 * Replaces the server's single bounded deque with one FIFO lane per
 * Priority class, each with its own slot quota under a shared total.
 * Quotas make starvation a policy, not an accident: a best-effort flood
 * exhausts its own lane and sheds while interactive slots stay free.
 * Draining is strict priority (interactive, then batch, then
 * best-effort), FIFO within a lane.
 *
 * The controller also refuses work it already knows it cannot finish in
 * time: it keeps an EWMA of recent execution times (fed by the server
 * after each kernel run) and, for a request with a deadline, estimates
 * the queue wait ahead of it — requests queued at the same or higher
 * priority, drained `workers` at a time.  When submit time + estimated
 * wait already exceeds the deadline, the request is shed immediately
 * (kDeadlineInfeasible -> RESOURCE_EXHAUSTED at the API) instead of
 * occupying a slot only to expire unserved.
 *
 * The controller is a pure data structure: not thread-safe (the server's
 * queue mutex synchronizes it, exactly as with the deque it replaces),
 * and payload-agnostic — it queues opaque shared_ptr<void> tickets, so it
 * unit-tests without a server.
 */
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>

#include "gm/serve/request.hh"

namespace gm::serve
{

/** Per-class quotas; defaults shed best-effort first under pressure. */
struct AdmissionOptions
{
    /** Hard cap across all classes (the old queue_capacity). */
    std::size_t total_capacity = 64;
    /** Per-class slot quotas, indexed by Priority.  A class at its quota
     *  sheds even when the total has room.  Defaults: interactive may use
     *  every slot, batch half, best-effort a quarter. */
    std::array<std::size_t, kPriorityClasses> class_capacity = {64, 32, 16};
    /** EWMA smoothing for the drain-rate estimate, in (0, 1]. */
    double service_ewma_alpha = 0.2;
    /** Worker count used to convert queue depth into estimated wait. */
    int workers = 4;
};

/** Priority queue with quotas + deadline-infeasibility shedding. */
class AdmissionController
{
  public:
    enum class Decision
    {
        kAdmitted,           ///< enqueued
        kQueueFull,          ///< total capacity reached
        kClassFull,          ///< the request's class quota reached
        kDeadlineInfeasible, ///< cannot finish before its deadline
    };

    /** One queued request: the fields admission decides on, plus the
     *  owner's opaque payload handed back verbatim by pop(). */
    struct Ticket
    {
        Priority priority = Priority::kInteractive;
        std::int64_t deadline_ns = 0; ///< absolute; 0 = none
        std::shared_ptr<void> payload;
    };

    explicit AdmissionController(AdmissionOptions options);

    /** Admit @p ticket at submit time @p now_ns, or say why not.  Only
     *  kAdmitted mutates the queue. */
    Decision try_admit(Ticket ticket, std::int64_t now_ns);

    /** Payload of the highest-priority oldest request; null when empty. */
    std::shared_ptr<void> pop();

    /** Record one observed execution time; feeds the drain estimate. */
    void record_service(std::int64_t service_ns);

    std::size_t
    depth() const
    {
        return depth_;
    }

    std::size_t
    depth(Priority priority) const
    {
        return lanes_[static_cast<std::size_t>(priority)].size();
    }

    bool
    empty() const
    {
        return depth_ == 0;
    }

    /** Current EWMA of execution time (0 until the first record). */
    std::int64_t
    service_estimate_ns() const
    {
        return static_cast<std::int64_t>(service_ewma_ns_);
    }

    /**
     * Estimated queue wait for a new request of @p priority: requests
     * serviced before it (same or higher priority), drained workers-wide,
     * each costing the EWMA execution time.  0 until an estimate exists.
     */
    std::int64_t estimated_wait_ns(Priority priority) const;

  private:
    AdmissionOptions options_;
    std::array<std::deque<Ticket>, kPriorityClasses> lanes_;
    std::size_t depth_ = 0;
    double service_ewma_ns_ = 0;
};

} // namespace gm::serve
