/**
 * @file
 * Byte-accounted LRU result cache with single-flight execution dedup.
 *
 * lookup_or_join() resolves a cache key to one of three roles:
 *
 *   kHit      — a completed result is cached; take it and go.
 *   kLeader   — nobody is computing this key: the caller must execute the
 *               kernel and publish() the outcome (success or failure).
 *   kFollower — an identical query is already executing; wait on the
 *               returned Inflight until the leader publishes.
 *
 * Only successful results are ever inserted — a failed, cancelled, or
 * deadline-expired leader publishes its status so followers can react,
 * but leaves no cache entry (no partial or poisoned results).  Insertion
 * evicts least-recently-used entries until the configured byte budget
 * holds; a single result larger than the whole budget is simply not
 * cached.
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "gm/serve/request.hh"
#include "gm/support/status.hh"

namespace gm::serve
{

/** LRU + single-flight cache; all operations are thread-safe. */
class ResultCache
{
  public:
    /**
     * Rendezvous between a single-flight leader and its followers.  The
     * leader fills the fields and flips done under mu; followers wait on
     * cv (polling their own deadline/cancel state between waits).
     */
    struct Inflight
    {
        std::mutex mu;
        std::condition_variable cv;
        bool done = false;
        /** Leader outcome; ok iff value is set. */
        support::Status status;
        std::shared_ptr<const ResultValue> value;
        std::uint64_t fingerprint = 0;
    };

    enum class Role { kHit, kLeader, kFollower };

    /** Outcome of lookup_or_join(): role plus the role's payload. */
    struct Lookup
    {
        Role role = Role::kLeader;
        /** Cached payload; set only for kHit. */
        std::shared_ptr<const ResultValue> value;
        std::uint64_t fingerprint = 0;
        /** Rendezvous; set for kLeader (to publish) and kFollower (to
         *  wait on). */
        std::shared_ptr<Inflight> flight;
    };

    /** Point-in-time counters (monotonic except entries/bytes). */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;      ///< leader + follower lookups
        std::uint64_t joins = 0;       ///< follower lookups only
        std::uint64_t insertions = 0;
        std::uint64_t evictions = 0;
        std::size_t entries = 0;
        std::size_t bytes = 0;
    };

    explicit ResultCache(std::size_t capacity_bytes)
        : capacity_bytes_(capacity_bytes)
    {
    }

    /** Resolve @p key; see the role taxonomy above. */
    Lookup lookup_or_join(const std::string& key);

    /**
     * Leader-only: record the execution outcome for @p key, insert the
     * result when @p status is ok, retire the in-flight slot, and wake
     * every follower.  Must be called exactly once per kLeader lookup,
     * on every path out of the execution (including failure) — a leader
     * that skips publish() would strand its followers.
     */
    void publish(const std::string& key,
                 const std::shared_ptr<Inflight>& flight,
                 support::Status status,
                 std::shared_ptr<const ResultValue> value,
                 std::uint64_t fingerprint);

    Stats stats() const;

    /** Drop every completed entry (in-flight executions are unaffected). */
    void clear();

  private:
    struct Entry
    {
        std::shared_ptr<const ResultValue> value;
        std::uint64_t fingerprint = 0;
        std::size_t bytes = 0;
        std::list<std::string>::iterator lru_it;
    };

    std::size_t capacity_bytes_;

    mutable std::mutex mu_;
    std::size_t bytes_ = 0;
    std::list<std::string> lru_; ///< front = most recently used
    std::unordered_map<std::string, Entry> entries_;
    std::unordered_map<std::string, std::shared_ptr<Inflight>> inflight_;
    Stats counters_;
};

} // namespace gm::serve
