/**
 * @file
 * Byte-accounted LRU result cache with single-flight execution dedup.
 *
 * lookup_or_join() resolves a cache key to one of three roles:
 *
 *   kHit      — a completed result is cached; take it and go.
 *   kLeader   — nobody is computing this key: the caller must execute the
 *               kernel and publish() the outcome (success or failure).
 *   kFollower — an identical query is already executing; wait on the
 *               returned Inflight until the leader publishes.
 *
 * Only successful results are ever inserted — a failed, cancelled, or
 * deadline-expired leader publishes its status so followers can react,
 * but leaves no cache entry (no partial or poisoned results).  Insertion
 * evicts least-recently-used entries until the configured byte budget
 * holds; a single result larger than the whole budget is simply not
 * cached.
 *
 * Entries may carry a TTL (ttl_ns > 0).  An expired entry is no longer a
 * hit — lookup_or_join() falls through to the single-flight logic and a
 * fresh leader recomputes (publish() then replaces the entry in place) —
 * but it is *kept* until replaced or evicted, because an expired answer
 * is exactly what degraded-mode serving wants: peek() returns any entry,
 * fresh or stale, without touching LRU order or single-flight state, and
 * the server uses it to answer allow_stale requests when the fresh path
 * is shed, broken, or failing (QueryResult::degraded).
 *
 * Entries are additionally tagged with the data generation they were
 * computed against (gm::dyn mutations bump the store generation).  A
 * lookup passes the generation it wants; an entry from an older
 * generation is not a hit — it behaves exactly like a TTL expiry
 * (counted as stale_generation_misses, kept for peek()) so a mutated
 * graph invalidates its cached answers without any explicit flush, while
 * allow_stale callers can still be served the pre-mutation answer,
 * marked degraded.  Callers that never mutate pass the default 0
 * everywhere and see the old behavior unchanged.
 *
 * The "serve.cache.insert" fault site is polled inside publish() before
 * insertion: an injected error drops the insertion (the flight still
 * completes and followers still wake — the cache just stays cold), a
 * delay fault slows publication.
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "gm/serve/request.hh"
#include "gm/support/clock.hh"
#include "gm/support/status.hh"

namespace gm::serve
{

/** LRU + single-flight cache; all operations are thread-safe. */
class ResultCache
{
  public:
    /**
     * Rendezvous between a single-flight leader and its followers.  The
     * leader fills the fields and flips done under mu; followers wait on
     * cv (polling their own deadline/cancel state between waits).
     */
    struct Inflight
    {
        std::mutex mu;
        std::condition_variable cv;
        bool done = false;
        /** Leader outcome; ok iff value is set. */
        support::Status status;
        std::shared_ptr<const ResultValue> value;
        std::uint64_t fingerprint = 0;
        /** Data generation the leader executed against. */
        std::uint64_t generation = 0;
    };

    enum class Role { kHit, kLeader, kFollower };

    /** Outcome of lookup_or_join(): role plus the role's payload. */
    struct Lookup
    {
        Role role = Role::kLeader;
        /** Cached payload; set only for kHit. */
        std::shared_ptr<const ResultValue> value;
        std::uint64_t fingerprint = 0;
        /** Generation the hit was computed against (kHit only). */
        std::uint64_t generation = 0;
        /** Rendezvous; set for kLeader (to publish) and kFollower (to
         *  wait on). */
        std::shared_ptr<Inflight> flight;
    };

    /** Point-in-time counters (monotonic except entries/bytes). */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;      ///< leader + follower lookups
        std::uint64_t joins = 0;       ///< follower lookups only
        std::uint64_t insertions = 0;
        std::uint64_t evictions = 0;
        std::uint64_t expired_misses = 0; ///< lookups past an entry's TTL
        /** Lookups that found an entry from an older data generation. */
        std::uint64_t stale_generation_misses = 0;
        std::uint64_t stale_serves = 0;   ///< peek() answers past TTL or
                                          ///< from an older generation
        std::size_t entries = 0;
        std::size_t bytes = 0;
    };

    /** peek() outcome: a cached payload plus its freshness. */
    struct Peek
    {
        std::shared_ptr<const ResultValue> value;
        std::uint64_t fingerprint = 0;
        /** Generation the entry was computed against. */
        std::uint64_t generation = 0;
        /** Within TTL and from the requested generation (always true when
         *  the cache has no TTL and the caller never mutates). */
        bool fresh = true;
    };

    /**
     * @p ttl_ns > 0 ages entries (0 = never expire); @p clock is the
     * time source for TTLs (defaults to the system clock; tests inject a
     * ManualClock).
     */
    explicit ResultCache(std::size_t capacity_bytes,
                         std::int64_t ttl_ns = 0,
                         support::Clock* clock = nullptr)
        : capacity_bytes_(capacity_bytes),
          ttl_ns_(ttl_ns),
          clock_(clock != nullptr ? clock : support::Clock::system())
    {
    }

    /** Resolve @p key against data generation @p generation; see the
     *  role taxonomy above.  An entry from another generation is treated
     *  like a TTL expiry: not a hit, but kept for peek(). */
    Lookup lookup_or_join(const std::string& key,
                          std::uint64_t generation = 0);

    /**
     * Degraded-mode read: any entry for @p key — fresh, expired, or from
     * an older generation — with no LRU or single-flight side effects.
     * value == nullptr when the key was never cached (or was evicted).
     */
    Peek peek(const std::string& key, std::uint64_t generation = 0);

    /**
     * Leader-only: record the execution outcome for @p key, insert the
     * result (tagged with the @p generation it was computed against) when
     * @p status is ok, retire the in-flight slot, and wake every
     * follower.  Must be called exactly once per kLeader lookup, on every
     * path out of the execution (including failure) — a leader that skips
     * publish() would strand its followers.
     */
    void publish(const std::string& key,
                 const std::shared_ptr<Inflight>& flight,
                 support::Status status,
                 std::shared_ptr<const ResultValue> value,
                 std::uint64_t fingerprint, std::uint64_t generation = 0);

    Stats stats() const;

    /** Drop every completed entry (in-flight executions are unaffected). */
    void clear();

  private:
    struct Entry
    {
        std::shared_ptr<const ResultValue> value;
        std::uint64_t fingerprint = 0;
        std::uint64_t generation = 0;
        std::size_t bytes = 0;
        std::int64_t inserted_ns = 0;
        std::list<std::string>::iterator lru_it;
    };

    /** Caller holds mu_. */
    bool expired(const Entry& entry, std::int64_t now_ns) const
    {
        return ttl_ns_ > 0 && now_ns - entry.inserted_ns >= ttl_ns_;
    }

    std::size_t capacity_bytes_;
    std::int64_t ttl_ns_;
    support::Clock* clock_;

    mutable std::mutex mu_;
    std::size_t bytes_ = 0;
    std::list<std::string> lru_; ///< front = most recently used
    std::unordered_map<std::string, Entry> entries_;
    std::unordered_map<std::string, std::shared_ptr<Inflight>> inflight_;
    Stats counters_;
};

} // namespace gm::serve
