/**
 * @file
 * Typed requests and results for the gm::serve query service.
 *
 * A Request names a cell of the benchmark cube (framework x kernel x
 * graph x mode) plus the per-query inputs (source vertex, deadline); the
 * server resolves it against its DatasetSuite and framework registry and
 * answers with a QueryResult.  Result payloads are immutable and shared:
 * a cache hit and the execution that produced it hand out the same
 * heap-owned value, so serving N readers costs one kernel run and zero
 * copies.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "gm/harness/framework.hh"
#include "gm/plan/value.hh"
#include "gm/support/types.hh"

namespace gm::serve
{

/**
 * Admission priority class.  Classes are quota'd independently (a
 * best-effort flood cannot fill the queue slots reserved for interactive
 * traffic) and drained strict-priority: interactive before batch before
 * best-effort, FIFO within a class.
 */
enum class Priority
{
    kInteractive = 0, ///< latency-sensitive; largest quota, drained first
    kBatch = 1,       ///< throughput traffic; middle quota
    kBestEffort = 2,  ///< shed-first traffic; smallest quota
};

/** Number of priority classes (array dimension for quotas/stats). */
inline constexpr int kPriorityClasses = 3;

/** Short stable name ("interactive", "batch", "best_effort"). */
const char* to_string(Priority priority);

/** One graph query.  Defaults describe "BFS from vertex 0 on GAP". */
struct Request
{
    /** Framework display name or lowercase alias ("GAP", "gkc", ...). */
    std::string framework = "GAP";
    harness::Kernel kernel = harness::Kernel::kBFS;
    /** Dataset name within the server's suite ("Road", "Kron", ...). */
    std::string graph;
    harness::Mode mode = harness::Mode::kBaseline;
    /** Source vertex for BFS/SSSP/BC; ignored (and normalized to 0 in the
     *  cache key) for CC/PR/TC. */
    vid_t source = 0;
    /** Wall-clock budget measured from submit(), covering queue wait and
     *  execution.  0 disables the deadline. */
    int deadline_ms = 0;
    /** Admission class; see Priority. */
    Priority priority = Priority::kInteractive;
    /**
     * Execution width: how many parallel lanes the kernel may use.
     * Clamped at submit to [1, the server's lane budget].  Width changes
     * latency only, never the answer — kernels are order-deterministic,
     * so the payload (and its fingerprint, and the cache key) is
     * bit-identical at any width.
     */
    int width = 1;
    /**
     * Request-scoped trace id.  0 (the default) tells the server to mint
     * one at submit; query() mints once before its first attempt and
     * reuses the id across retries, so every JSONL record and trace
     * session for one logical query carries the same id.  Excluded from
     * the cache key (identity of the answer, not of the asker).
     */
    std::uint64_t trace_id = 0;
    /** 1-based attempt number stamped by query()'s retry loop (callers
     *  submitting directly may leave it; submit() normalizes 0 to 1). */
    int attempt = 1;
    /**
     * Degraded-mode opt-in: when the request cannot be served fresh —
     * shed at admission, fast-failed by an open circuit breaker, or
     * failed/expired during execution — answer from a cached result for
     * the same cell if one exists (even one past its TTL), marked
     * QueryResult::degraded.  The fallback never masks INVALID_INPUT or a
     * caller-initiated cancel.
     */
    bool allow_stale = false;
};

/**
 * Kernel result payloads.  BFS parents, SSSP distances, and CC labels
 * share the int32 alternative (vid_t and weight_t are both int32_t, and
 * std::variant forbids duplicate alternatives); PR/BC scores share the
 * double vector; TC is a bare triangle count; the uint64 vector carries
 * plan-node histogram counts.  Aliased to gm::plan's Value so plan
 * intermediates, query answers, and cache entries are one type and move
 * between layers without copies (the original three alternatives keep
 * their indices, so pre-plan fingerprints and byte accounting are
 * unchanged).
 */
using ResultValue = plan::Value;

/** Heap bytes a cached copy of @p value occupies (payload, not variant). */
std::size_t result_bytes(const ResultValue& value);

/**
 * FNV-1a digest over the alternative index and raw payload bytes.  Two
 * results fingerprint equal iff they are bit-identical, which is what the
 * acceptance tests compare against direct framework execution.
 */
std::uint64_t result_fingerprint(const ResultValue& value);

/** A completed query: the shared payload plus serving metadata. */
struct QueryResult
{
    /** Immutable payload, shared with the cache and concurrent readers. */
    std::shared_ptr<const ResultValue> value;
    /** result_fingerprint() of *value. */
    std::uint64_t fingerprint = 0;
    /** Answered from the result cache without executing. */
    bool cache_hit = false;
    /** Answered by joining another in-flight identical query
     *  (single-flight follower; counts neither as a hit nor a run). */
    bool shared_execution = false;
    /** Served stale from the cache because the fresh path was shed, the
     *  cell's breaker was open, or execution failed (allow_stale only).
     *  The payload may predate the latest data; counted separately in
     *  ServerStats::degraded. */
    bool degraded = false;
    /** Time spent in the admission queue before a worker picked it up. */
    double queue_seconds = 0;
    /** Kernel execution time; 0 for cache hits and followers. */
    double execute_seconds = 0;
    /** Lanes actually granted to this execution (may be fewer than the
     *  requested width under contention); 0 when no kernel ran (cache
     *  hit, follower, degraded). */
    int lanes = 0;
    /** Lane busy time / (lanes x execute time) for the execution that
     *  produced this result; 0 when no kernel ran. */
    double parallel_efficiency = 0;
    /** Total submit()-to-completion latency as stamped by the server
     *  (covers queue wait, execution or join wait, and cache lookups). */
    double service_seconds = 0;
    /** The request's trace id (minted at submit when the caller left it
     *  0); matches the "trace" field of this query's JSONL records. */
    std::uint64_t trace_id = 0;
    /** Data generation of the graph this answer was computed against
     *  (bumped by Server::mutate compactions).  For degraded answers it
     *  may lag the store's current generation — that is what "stale"
     *  means once a graph mutates. */
    std::uint64_t generation = 0;
};

} // namespace gm::serve
