#include "gm/serve/retry.hh"

#include <algorithm>
#include <cmath>

#include "gm/support/rng.hh"

namespace gm::serve
{

bool
retryable_status(support::StatusCode code)
{
    switch (code) {
      case support::StatusCode::kResourceExhausted: // shed; load may drain
      case support::StatusCode::kUnavailable:       // breaker may half-open
      case support::StatusCode::kCancelled: // abandoned leader; the query
                                            // itself was never computed
        return true;
      default:
        return false;
    }
}

std::int64_t
backoff_ms(const RetryPolicy& policy, int next_attempt)
{
    if (policy.initial_backoff_ms <= 0)
        return 0;
    const double exponent = std::max(0, next_attempt - 2);
    double ms = static_cast<double>(policy.initial_backoff_ms) *
                std::pow(std::max(1.0, policy.backoff_multiplier),
                         exponent);
    ms = std::min(ms, static_cast<double>(policy.max_backoff_ms));
    // Deterministic jitter in [0.5, 1.5): same seed, same sequence.
    SplitMix64 mix(policy.seed ^
                   (static_cast<std::uint64_t>(next_attempt) *
                    0x9e3779b97f4a7c15ULL));
    const double jitter =
        0.5 + static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
    return static_cast<std::int64_t>(ms * jitter);
}

} // namespace gm::serve
