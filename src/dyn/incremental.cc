#include "gm/dyn/incremental.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <unordered_map>
#include <utility>

#include "gm/graph/builder.hh"
#include "gm/par/parallel_for.hh"

namespace gm::dyn
{

namespace
{

/** Iterative find with full path compression over a vid_t parent array. */
vid_t
dsu_find(std::vector<vid_t>& parent, vid_t v)
{
    vid_t root = v;
    while (parent[root] != root)
        root = parent[root];
    while (parent[v] != root) {
        const vid_t next = parent[v];
        parent[v] = root;
        v = next;
    }
    return root;
}

/** Find over a sparse label-value DSU (identity when absent). */
vid_t
map_find(std::unordered_map<vid_t, vid_t>& parent, vid_t v)
{
    auto it = parent.find(v);
    while (it != parent.end() && it->second != v) {
        v = it->second;
        it = parent.find(v);
    }
    return v;
}

} // namespace

std::vector<vid_t>
cc_labels(const GraphView& view)
{
    const vid_t n = view.num_vertices();
    std::vector<vid_t> parent(static_cast<std::size_t>(n));
    for (vid_t v = 0; v < n; ++v)
        parent[v] = v;
    // Union by min root: the root of every set is its minimum vertex id,
    // so the compressed parent IS the canonical label.  Out-arcs alone
    // cover weak connectivity (each edge appears in some out row).
    for (vid_t v = 0; v < n; ++v) {
        view.for_out(v, [&](vid_t t) {
            const vid_t rv = dsu_find(parent, v);
            const vid_t rt = dsu_find(parent, t);
            if (rv < rt)
                parent[rt] = rv;
            else if (rt < rv)
                parent[rv] = rt;
        });
    }
    std::vector<vid_t> labels(static_cast<std::size_t>(n));
    for (vid_t v = 0; v < n; ++v)
        labels[v] = dsu_find(parent, v);
    return labels;
}

std::vector<vid_t>
bfs_depths(const GraphView& view, vid_t source)
{
    const vid_t n = view.num_vertices();
    std::vector<vid_t> depth(static_cast<std::size_t>(n), kInvalidVid);
    if (source < 0 || source >= n)
        return depth;
    depth[source] = 0;
    std::deque<vid_t> frontier{source};
    while (!frontier.empty()) {
        const vid_t v = frontier.front();
        frontier.pop_front();
        const vid_t dv = depth[v];
        view.for_out(v, [&](vid_t t) {
            if (depth[t] == kInvalidVid) {
                depth[t] = dv + 1;
                frontier.push_back(t);
            }
        });
    }
    return depth;
}

std::vector<weight_t>
sssp_dists(const GraphView& view, vid_t source, std::uint64_t weight_seed)
{
    const vid_t n = view.num_vertices();
    std::vector<weight_t> dist(static_cast<std::size_t>(n), kInfWeight);
    if (source < 0 || source >= n)
        return dist;
    using Item = std::pair<weight_t, vid_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
    dist[source] = 0;
    pq.push({0, source});
    while (!pq.empty()) {
        const auto [d, v] = pq.top();
        pq.pop();
        if (d > dist[v])
            continue; // stale entry
        view.for_out(v, [&](vid_t t) {
            const weight_t w = graph::pair_weight(v, t, weight_seed);
            if (dist[t] > d + w) {
                dist[t] = d + w;
                pq.push({dist[t], t});
            }
        });
    }
    return dist;
}

std::vector<score_t>
pagerank(const GraphView& view, const PageRankOptions& opts)
{
    const vid_t n = view.num_vertices();
    if (n == 0)
        return {};
    const score_t base = (1.0 - opts.damping) / n;
    std::vector<score_t> scores(static_cast<std::size_t>(n), 1.0 / n);
    std::vector<score_t> next(static_cast<std::size_t>(n));
    for (int iter = 0; iter < opts.max_iters; ++iter) {
        // Independent per-vertex writes; each vertex accumulates its
        // sorted in-row sequentially, so the sum order is fixed and the
        // result width-invariant.
        par::parallel_for<vid_t>(0, n, [&](vid_t v) {
            score_t sum = 0;
            view.for_in(v, [&](vid_t u) {
                const eid_t d = view.out_degree(u);
                if (d > 0)
                    sum += scores[u] / static_cast<score_t>(d);
            });
            next[v] = base + opts.damping * sum;
        });
        score_t err = 0;
        for (vid_t v = 0; v < n; ++v)
            err += std::fabs(next[v] - scores[v]);
        scores.swap(next);
        if (err < opts.tolerance)
            break;
    }
    return scores;
}

void
CCMaintainer::rebuild(const GraphView& view)
{
    labels_ = cc_labels(view);
}

bool
CCMaintainer::update(const GraphView& view, const BatchEffect& effect)
{
    const vid_t n = view.num_vertices();
    stats_.last_dirty_fraction = effect.dirty_fraction(n);
    if (effect.has_deletes() ||
        stats_.last_dirty_fraction > opts_.full_threshold) {
        rebuild(view);
        ++stats_.full;
        return false;
    }
    // Afforest-style re-linking of the batch-touched endpoints: union the
    // previous component labels of every inserted edge (min label wins,
    // preserving the min-id invariant), then one relabel pass — skipped
    // entirely when no insert joined two components.
    std::unordered_map<vid_t, vid_t> parent;
    bool merged = false;
    for (const graph::Edge& e : effect.inserted) {
        const vid_t lu = map_find(parent, labels_[e.u]);
        const vid_t lv = map_find(parent, labels_[e.v]);
        if (lu == lv)
            continue;
        parent[std::max(lu, lv)] = std::min(lu, lv);
        merged = true;
    }
    if (merged) {
        std::unordered_map<vid_t, vid_t> resolved;
        resolved.reserve(parent.size());
        for (const auto& [label, _] : parent)
            resolved[label] = map_find(parent, label);
        // Read-only map; independent writes — width-invariant.
        par::parallel_for<vid_t>(0, n, [&](vid_t v) {
            const auto it = resolved.find(labels_[v]);
            if (it != resolved.end())
                labels_[v] = it->second;
        });
    }
    ++stats_.incremental;
    return true;
}

void
BfsMaintainer::rebuild(const GraphView& view)
{
    depths_ = bfs_depths(view, source_);
}

bool
BfsMaintainer::update(const GraphView& view, const BatchEffect& effect)
{
    const vid_t n = view.num_vertices();
    stats_.last_dirty_fraction = effect.dirty_fraction(n);
    if (effect.has_deletes() ||
        stats_.last_dirty_fraction > opts_.full_threshold) {
        rebuild(view);
        ++stats_.full;
        return false;
    }
    // Inserts only shorten paths, so monotone relaxation from the
    // endpoints a new arc improved converges to the unique depth fixed
    // point — bit-identical to a full recompute.
    std::deque<vid_t> work;
    const auto relax = [&](vid_t u, vid_t v) {
        if (depths_[u] == kInvalidVid)
            return;
        if (depths_[v] == kInvalidVid || depths_[v] > depths_[u] + 1) {
            depths_[v] = depths_[u] + 1;
            work.push_back(v);
        }
    };
    for (const graph::Edge& e : effect.inserted) {
        relax(e.u, e.v);
        if (!view.is_directed())
            relax(e.v, e.u);
    }
    while (!work.empty()) {
        const vid_t v = work.front();
        work.pop_front();
        const vid_t dv = depths_[v];
        view.for_out(v, [&](vid_t t) {
            if (depths_[t] == kInvalidVid || depths_[t] > dv + 1) {
                depths_[t] = dv + 1;
                work.push_back(t);
            }
        });
    }
    ++stats_.incremental;
    return true;
}

void
SsspMaintainer::rebuild(const GraphView& view)
{
    dists_ = sssp_dists(view, source_, weight_seed_);
}

bool
SsspMaintainer::update(const GraphView& view, const BatchEffect& effect)
{
    const vid_t n = view.num_vertices();
    stats_.last_dirty_fraction = effect.dirty_fraction(n);
    if (effect.has_deletes() ||
        stats_.last_dirty_fraction > opts_.full_threshold) {
        rebuild(view);
        ++stats_.full;
        return false;
    }
    using Item = std::pair<weight_t, vid_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
    const auto relax = [&](vid_t u, vid_t v) {
        if (dists_[u] >= kInfWeight)
            return;
        const weight_t w = graph::pair_weight(u, v, weight_seed_);
        if (dists_[v] > dists_[u] + w) {
            dists_[v] = dists_[u] + w;
            pq.push({dists_[v], v});
        }
    };
    for (const graph::Edge& e : effect.inserted) {
        relax(e.u, e.v);
        if (!view.is_directed())
            relax(e.v, e.u);
    }
    while (!pq.empty()) {
        const auto [d, v] = pq.top();
        pq.pop();
        if (d > dists_[v])
            continue;
        view.for_out(v, [&](vid_t t) {
            const weight_t w = graph::pair_weight(v, t, weight_seed_);
            if (dists_[t] > d + w) {
                dists_[t] = d + w;
                pq.push({dists_[t], t});
            }
        });
    }
    ++stats_.incremental;
    return true;
}

void
PageRankMaintainer::rebuild(const GraphView& view)
{
    scores_ = pagerank(view, pr_);
}

bool
PageRankMaintainer::update(const GraphView& view, const BatchEffect& effect)
{
    const vid_t n = view.num_vertices();
    stats_.last_dirty_fraction = effect.dirty_fraction(n);
    if (stats_.last_dirty_fraction > opts_.full_threshold) {
        rebuild(view);
        ++stats_.full;
        return false;
    }
    // Deletes are fine here: the pull update re-reads the live adjacency,
    // so any local structure change just perturbs the fixed point the
    // dirty frontier re-converges to.
    const score_t base = (1.0 - pr_.damping) / n;
    const auto pull = [&](vid_t v) {
        score_t sum = 0;
        view.for_in(v, [&](vid_t u) {
            const eid_t d = view.out_degree(u);
            if (d > 0)
                sum += scores_[u] / static_cast<score_t>(d);
        });
        return base + pr_.damping * sum;
    };

    // Seed frontier: touched vertices plus everyone they feed (an
    // endpoint's out-degree change rescales its contribution to every
    // out-neighbor).
    std::vector<vid_t> active;
    for (const vid_t d : effect.dirty) {
        active.push_back(d);
        view.for_out(d, [&](vid_t t) { active.push_back(t); });
    }
    std::sort(active.begin(), active.end());
    active.erase(std::unique(active.begin(), active.end()), active.end());

    const std::size_t explode =
        static_cast<std::size_t>(opts_.full_threshold * 10.0 *
                                 static_cast<double>(n)) +
        1;
    for (int iter = 0; iter < pr_.max_iters && !active.empty(); ++iter) {
        if (active.size() > explode) {
            rebuild(view); // frontier blew up: cheaper to recompute
            ++stats_.full;
            return false;
        }
        std::vector<std::pair<vid_t, score_t>> updates;
        updates.reserve(active.size());
        for (const vid_t v : active)
            updates.emplace_back(v, pull(v));
        std::vector<vid_t> next;
        for (const auto& [v, s] : updates) {
            if (std::fabs(s - scores_[v]) > pr_.tolerance) {
                view.for_out(v, [&](vid_t t) { next.push_back(t); });
            }
            scores_[v] = s; // Jacobi: applied after the whole scan
        }
        std::sort(next.begin(), next.end());
        next.erase(std::unique(next.begin(), next.end()), next.end());
        active.swap(next);
    }
    ++stats_.incremental;
    return true;
}

} // namespace gm::dyn
