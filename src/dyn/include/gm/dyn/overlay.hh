/**
 * @file
 * gm::dyn — a mutable overlay over the immutable GraphStore.
 *
 * The store's CSR snapshots stay immutable; mutation happens in a
 * DeltaOverlay that buffers batched edge inserts/deletes as sorted
 * per-vertex adjacency deltas with tombstones.  Readers see the overlay
 * through a generation-tagged GraphView — base CSR merged with the delta
 * rows on the fly — and a compact() step folds the deltas into a fresh CSR
 * generation installed into the store (the old generation is retired and
 * stays byte-accounted until its last outstanding view drops).
 *
 * Determinism contract: apply() is a serial, order-defined fold of the
 * batch (inserts first, then deletes), so the resulting snapshot is a pure
 * function of (base, batch sequence); compact() writes each vertex's
 * merged row independently under par::parallel_for, so the compacted CSR
 * is bit-identical across GM_THREADS.  The compacted CSR of the live edge
 * set equals graph::build_graph() of the same edge list (sorted, deduped,
 * self-loop-free) — pinned by the rebuild-oracle property test.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "gm/graph/builder.hh"
#include "gm/graph/csr.hh"
#include "gm/graph/edge_list.hh"
#include "gm/store/graph_store.hh"
#include "gm/support/status.hh"

namespace gm::dyn
{

/** One batch of edge mutations, applied atomically by DynamicGraph::apply.
 *  Within a batch, inserts are folded before deletes. */
struct MutationBatch
{
    graph::EdgeList inserts;
    graph::EdgeList deletes;

    void insert(vid_t u, vid_t v) { inserts.push_back({u, v}); }
    void erase(vid_t u, vid_t v) { deletes.push_back({u, v}); }
    bool empty() const { return inserts.empty() && deletes.empty(); }
    std::size_t size() const { return inserts.size() + deletes.size(); }
};

/** One buffered adjacency change: a live inserted arc, or a tombstone over
 *  a base arc. */
struct DeltaEntry
{
    vid_t v;    ///< target (out-rows) or source (in-rows)
    bool dead;  ///< true: tombstone over a base arc; false: inserted arc

    friend bool operator==(const DeltaEntry&, const DeltaEntry&) = default;
};

/**
 * Immutable per-vertex adjacency deltas for one generation, CSR-shaped:
 * offsets plus rows sorted by target.  Invariants (maintained by apply):
 * at most one entry per (vertex, target); tombstones always match a base
 * arc; live entries never duplicate a base arc.  Directed graphs carry a
 * mirrored in-direction; undirected graphs leave it empty (both stored
 * arc directions live in the out rows, like the CSR itself).
 */
struct DeltaSnapshot
{
    std::vector<eid_t> out_off;        ///< size n+1
    std::vector<DeltaEntry> out_rows;  ///< sorted per vertex
    std::vector<eid_t> in_off;         ///< directed only; else empty
    std::vector<DeltaEntry> in_rows;
    /** Net out-degree change per vertex (inserts - tombstones). */
    std::vector<std::int32_t> out_deg_delta;
    /** Net in-degree change per vertex (directed only). */
    std::vector<std::int32_t> in_deg_delta;
    /** Stored-arc delta: live out entries minus out tombstones. */
    eid_t arc_delta = 0;

    /** Owned heap bytes (charged to the store as overlay bytes). */
    std::size_t
    bytes() const
    {
        return (out_off.size() + in_off.size()) * sizeof(eid_t) +
               (out_rows.size() + in_rows.size()) * sizeof(DeltaEntry) +
               (out_deg_delta.size() + in_deg_delta.size()) *
                   sizeof(std::int32_t);
    }
};

/**
 * A generation-tagged, immutable read view: base CSR + delta merge.
 * Copyable and cheap (two shared_ptrs); holding one pins its generation's
 * base CSR, which keeps the retired generation byte-accounted in the
 * store until the last view drops.
 */
class GraphView
{
  public:
    GraphView() = default;
    GraphView(std::shared_ptr<const graph::CSRGraph> base,
              std::shared_ptr<const DeltaSnapshot> delta,
              std::uint64_t generation)
        : base_(std::move(base)),
          delta_(std::move(delta)),
          generation_(generation)
    {
    }

    vid_t num_vertices() const { return base_->num_vertices(); }
    bool is_directed() const { return base_->is_directed(); }
    std::uint64_t generation() const { return generation_; }
    const graph::CSRGraph& base() const { return *base_; }
    bool has_delta() const { return delta_ != nullptr; }

    /** Stored (directed) arc count after the merge. */
    eid_t
    num_edges_directed() const
    {
        return base_->num_edges_directed() + (delta_ ? delta_->arc_delta : 0);
    }

    /** Merged out-degree of @p v. */
    eid_t
    out_degree(vid_t v) const
    {
        eid_t d = base_->out_degree(v);
        if (delta_)
            d += delta_->out_deg_delta[v];
        return d;
    }

    /** Merged in-degree of @p v (== out-degree when undirected). */
    eid_t
    in_degree(vid_t v) const
    {
        if (!is_directed())
            return out_degree(v);
        eid_t d = base_->in_degree(v);
        if (delta_)
            d += delta_->in_deg_delta[v];
        return d;
    }

    /** Visit the live out-neighbors of @p v in ascending target order. */
    template <typename Fn>
    void
    for_out(vid_t v, Fn&& fn) const
    {
        merge_row(base_->out_neigh(v), delta_row(v, /*out=*/true), fn);
    }

    /** Visit the live in-neighbors of @p v in ascending source order. */
    template <typename Fn>
    void
    for_in(vid_t v, Fn&& fn) const
    {
        if (!is_directed()) {
            for_out(v, fn);
            return;
        }
        merge_row(base_->in_neigh(v), delta_row(v, /*out=*/false), fn);
    }

    /** True when the live merged view contains the arc u -> t. */
    bool has_out_edge(vid_t u, vid_t t) const;

  private:
    std::span<const DeltaEntry> delta_row(vid_t v, bool out) const;

    /** Two-pointer merge of a sorted base row with a sorted delta row:
     *  tombstones suppress their base arc, live entries splice in. */
    template <typename Fn>
    static void
    merge_row(std::span<const vid_t> base, std::span<const DeltaEntry> delta,
              Fn&& fn)
    {
        std::size_t i = 0;
        std::size_t j = 0;
        while (i < base.size() || j < delta.size()) {
            if (j == delta.size() ||
                (i < base.size() && base[i] < delta[j].v)) {
                fn(base[i++]);
            } else if (i == base.size() || delta[j].v < base[i]) {
                if (!delta[j].dead)
                    fn(delta[j].v);
                ++j;
            } else { // equal target: only tombstones may shadow a base arc
                if (!delta[j].dead)
                    fn(base[i]);
                ++i;
                ++j;
            }
        }
    }

    std::shared_ptr<const graph::CSRGraph> base_;
    std::shared_ptr<const DeltaSnapshot> delta_;
    std::uint64_t generation_ = 0;
};

/** Net effect of one applied batch (after dedupe against the live view). */
struct BatchEffect
{
    /** Sorted unique vertices whose adjacency (out or in) changed. */
    std::vector<vid_t> dirty;
    /** Effective logical edges, post-dedupe, in fold order (one entry per
     *  logical edge even when two stored arcs changed). */
    graph::EdgeList inserted;
    graph::EdgeList deleted;
    eid_t inserted_arcs = 0;  ///< stored arcs that became live
    eid_t deleted_arcs = 0;   ///< stored arcs that died
    std::size_t requested = 0; ///< batch.size() as submitted

    bool changed() const { return inserted_arcs > 0 || deleted_arcs > 0; }
    bool has_deletes() const { return deleted_arcs > 0; }

    /** |dirty| / n — the incremental-vs-recompute policy input. */
    double
    dirty_fraction(vid_t n) const
    {
        return n == 0 ? 0.0
                      : static_cast<double>(dirty.size()) /
                            static_cast<double>(n);
    }
};

/**
 * The DeltaOverlay manager for one store: buffers batched mutations
 * against the store's current CSR generation and folds them into fresh
 * generations via compact().
 *
 * Thread safety: accessors and apply()/compact() are individually
 * locked, but apply()/compact() assume kernel execution against the
 * store's base reference is quiesced (gm::serve holds the whole lane
 * budget across Server::mutate).  Mutation order defines the result —
 * there is no concurrent-writer merge.
 */
class DynamicGraph
{
  public:
    explicit DynamicGraph(std::shared_ptr<store::GraphStore> store);

    /** View of the current generation (base + pending deltas). */
    GraphView view() const;

    /** Current CSR generation id (bumps on compact of a dirty overlay). */
    std::uint64_t generation() const;

    /** Pending overlay bytes (0 right after a compact). */
    std::size_t pending_bytes() const;

    /** Pending stored-arc changes (live inserts + tombstones). */
    std::size_t pending_entries() const;

    /**
     * Apply one batch: validate endpoints, fold inserts then deletes into
     * a fresh immutable DeltaSnapshot (dedupe against the live merged
     * view: inserting a present edge or deleting an absent one is a
     * no-op; deleting a buffered insert cancels it; re-inserting a
     * tombstoned base edge resurrects it; self-loops are ignored).
     * Undirected graphs fold both stored arc directions.
     *
     * @return the net effect, or kInvalidInput (nothing applied) when an
     *         endpoint is out of range.
     */
    support::StatusOr<BatchEffect> apply(const MutationBatch& batch);

    /**
     * Fold pending deltas into a fresh CSR and install it into the store
     * as the next generation (per-vertex parallel merge, deterministic).
     * No-op when the overlay is clean.
     *
     * @return the store generation now current.
     */
    std::uint64_t compact();

  private:
    std::shared_ptr<store::GraphStore> store_;
    mutable std::mutex mu_;
    std::shared_ptr<const graph::CSRGraph> base_; ///< pinned current gen
    std::shared_ptr<const DeltaSnapshot> delta_;  ///< null when clean
    std::uint64_t generation_ = 0;
};

} // namespace gm::dyn
