/**
 * @file
 * Incremental kernel maintenance over gm::dyn GraphViews.
 *
 * The gm::dyn canonical kernels are defined by *unique fixed points* so a
 * repaired result is provably equal to a full recompute — not merely
 * equivalent up to tie-breaking, which is what makes "incremental is
 * bit-identical to full" testable:
 *
 *  - cc_labels:  label = minimum vertex id in the weakly-connected
 *                component (the Afforest result after full compression,
 *                with min-id roots);
 *  - bfs_depths: hop distance from the source (-1 unreached);
 *  - sssp_dists: shortest weighted distance from the source, with the
 *                store's deterministic pair weights (kInfWeight
 *                unreached);
 *  - pagerank:   pull-style Jacobi iteration to an L1 tolerance —
 *                contractive, so the incremental (delta) variant lands
 *                within convergence epsilon of the full result.
 *
 * Each maintainer keeps the previous result and repairs it from a
 * BatchEffect: CC re-links the batch-touched endpoints (union by min
 * label, then one relabel pass — skipped entirely when no insert joins
 * two components); BFS/SSSP re-trigger monotone relaxation from endpoints
 * a new arc improved; PageRank re-converges only the dirty frontier.
 * Every maintainer falls back to full recompute when the dirty set
 * exceeds its threshold — and CC/BFS/SSSP also on any effective delete,
 * since deletions break their monotone-repair arguments.  Decisions are
 * deterministic (pure functions of the effect), so repaired results are
 * bit-identical across GM_THREADS.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "gm/dyn/overlay.hh"

namespace gm::dyn
{

/** Canonical connected components: min vertex id per component (weakly
 *  connected for directed graphs). */
std::vector<vid_t> cc_labels(const GraphView& view);

/** Canonical BFS depths from @p source (-1 unreached); follows out-arcs. */
std::vector<vid_t> bfs_depths(const GraphView& view, vid_t source);

/** Canonical SSSP distances from @p source using the deterministic
 *  graph::pair_weight weights (kInfWeight unreached); follows out-arcs. */
std::vector<weight_t> sssp_dists(const GraphView& view, vid_t source,
                                 std::uint64_t weight_seed);

/** Knobs for the canonical PageRank. */
struct PageRankOptions
{
    score_t damping = 0.85;
    score_t tolerance = 1e-9; ///< L1 stop threshold for the full solve
    int max_iters = 200;
};

/** Canonical pull-Jacobi PageRank over the merged view. */
std::vector<score_t> pagerank(const GraphView& view,
                              const PageRankOptions& opts = {});

/** Incremental-vs-full decision counters, exported as gm_dyn_* metrics. */
struct MaintainerStats
{
    std::uint64_t incremental = 0; ///< batches repaired in place
    std::uint64_t full = 0;        ///< batches that fell back to recompute
    double last_dirty_fraction = 0.0;
};

/** Shared threshold policy: repair only below this |dirty|/n fraction. */
struct MaintainerOptions
{
    double full_threshold = 0.05;
};

/** Incremental connected components (Afforest-style re-linking). */
class CCMaintainer
{
  public:
    explicit CCMaintainer(const MaintainerOptions& opts = {}) : opts_(opts) {}

    /** Full recompute against @p view (also the fallback path). */
    void rebuild(const GraphView& view);

    /** Repair after one applied batch.  @return true when the
     *  incremental path was taken (false: fell back to rebuild). */
    bool update(const GraphView& view, const BatchEffect& effect);

    const std::vector<vid_t>& labels() const { return labels_; }
    const MaintainerStats& stats() const { return stats_; }

  private:
    MaintainerOptions opts_;
    std::vector<vid_t> labels_;
    MaintainerStats stats_;
};

/** Incremental BFS depths from a fixed source. */
class BfsMaintainer
{
  public:
    explicit BfsMaintainer(vid_t source, const MaintainerOptions& opts = {})
        : source_(source), opts_(opts)
    {
    }

    void rebuild(const GraphView& view);
    bool update(const GraphView& view, const BatchEffect& effect);

    const std::vector<vid_t>& depths() const { return depths_; }
    const MaintainerStats& stats() const { return stats_; }

  private:
    vid_t source_;
    MaintainerOptions opts_;
    std::vector<vid_t> depths_;
    MaintainerStats stats_;
};

/** Incremental SSSP distances from a fixed source. */
class SsspMaintainer
{
  public:
    SsspMaintainer(vid_t source, std::uint64_t weight_seed,
                   const MaintainerOptions& opts = {})
        : source_(source), weight_seed_(weight_seed), opts_(opts)
    {
    }

    void rebuild(const GraphView& view);
    bool update(const GraphView& view, const BatchEffect& effect);

    const std::vector<weight_t>& dists() const { return dists_; }
    const MaintainerStats& stats() const { return stats_; }

  private:
    vid_t source_;
    std::uint64_t weight_seed_;
    MaintainerOptions opts_;
    std::vector<weight_t> dists_;
    MaintainerStats stats_;
};

/** Delta PageRank: re-converges only the dirty frontier.  Handles deletes
 *  (the pull update re-reads the live adjacency); falls back on dirty
 *  fraction only. */
class PageRankMaintainer
{
  public:
    explicit PageRankMaintainer(const PageRankOptions& pr = {},
                                const MaintainerOptions& opts = {})
        : pr_(pr), opts_(opts)
    {
    }

    void rebuild(const GraphView& view);
    bool update(const GraphView& view, const BatchEffect& effect);

    const std::vector<score_t>& scores() const { return scores_; }
    const MaintainerStats& stats() const { return stats_; }

  private:
    PageRankOptions pr_;
    MaintainerOptions opts_;
    std::vector<score_t> scores_;
    MaintainerStats stats_;
};

} // namespace gm::dyn
