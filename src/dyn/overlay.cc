#include "gm/dyn/overlay.hh"

#include <algorithm>
#include <map>
#include <numeric>

#include "gm/par/parallel_for.hh"

namespace gm::dyn
{

namespace
{

/** Binary search a sorted base row for target @p t. */
bool
base_has(std::span<const vid_t> row, vid_t t)
{
    return std::binary_search(row.begin(), row.end(), t);
}

/** Mutable working copy of the touched rows in one direction. */
using Row = std::map<vid_t, bool>; // target -> dead

/** Per-direction fold state for apply(). */
struct Fold
{
    const graph::CSRGraph* base = nullptr;
    const DeltaSnapshot* old_delta = nullptr;
    bool out = true;
    std::map<vid_t, Row> touched; // vertex -> working row

    std::span<const DeltaEntry>
    old_row(vid_t v) const
    {
        if (old_delta == nullptr)
            return {};
        const auto& off = out ? old_delta->out_off : old_delta->in_off;
        const auto& rows = out ? old_delta->out_rows : old_delta->in_rows;
        if (off.empty())
            return {};
        return {rows.data() + off[v],
                static_cast<std::size_t>(off[v + 1] - off[v])};
    }

    Row&
    row_of(vid_t v)
    {
        auto it = touched.find(v);
        if (it != touched.end())
            return it->second;
        Row row;
        for (const DeltaEntry& e : old_row(v))
            row.emplace(e.v, e.dead);
        return touched.emplace(v, std::move(row)).first->second;
    }

    std::span<const vid_t>
    base_row(vid_t v) const
    {
        return out ? base->out_neigh(v) : base->in_neigh(v);
    }

    /** Fold one arc op.  @return true when the live arc set changed. */
    bool
    arc(vid_t v, vid_t t, bool insert)
    {
        Row& row = row_of(v);
        auto it = row.find(t);
        if (insert) {
            if (it != row.end()) {
                if (it->second) { // tombstoned base arc: resurrect
                    row.erase(it);
                    return true;
                }
                return false; // buffered insert already live
            }
            if (base_has(base_row(v), t))
                return false; // base arc already live
            row.emplace(t, false);
            return true;
        }
        if (it != row.end()) {
            if (it->second)
                return false; // already tombstoned
            row.erase(it); // cancel the buffered insert
            return true;
        }
        if (!base_has(base_row(v), t))
            return false; // absent edge
        row.emplace(t, true);
        return true;
    }

    /**
     * Rebuild this direction's flat snapshot arrays from old rows plus
     * the touched working rows.  Serial: a pure fold of the batch.
     */
    void
    emit(vid_t n, std::vector<eid_t>* off, std::vector<DeltaEntry>* rows,
         std::vector<std::int32_t>* deg_delta) const
    {
        off->assign(static_cast<std::size_t>(n) + 1, 0);
        deg_delta->assign(static_cast<std::size_t>(n), 0);
        rows->clear();
        for (vid_t v = 0; v < n; ++v) {
            (*off)[v] = static_cast<eid_t>(rows->size());
            auto it = touched.find(v);
            if (it != touched.end()) {
                for (const auto& [t, dead] : it->second)
                    rows->push_back({t, dead});
            } else {
                for (const DeltaEntry& e : old_row(v))
                    rows->push_back(e);
            }
            for (std::size_t k = (*off)[v]; k < rows->size(); ++k)
                (*deg_delta)[v] += (*rows)[k].dead ? -1 : 1;
        }
        (*off)[n] = static_cast<eid_t>(rows->size());
    }
};

} // namespace

bool
GraphView::has_out_edge(vid_t u, vid_t t) const
{
    const auto row = delta_row(u, /*out=*/true);
    const auto it = std::lower_bound(
        row.begin(), row.end(), t,
        [](const DeltaEntry& e, vid_t target) { return e.v < target; });
    if (it != row.end() && it->v == t)
        return !it->dead;
    return base_has(base_->out_neigh(u), t);
}

std::span<const DeltaEntry>
GraphView::delta_row(vid_t v, bool out) const
{
    if (!delta_)
        return {};
    const auto& off = out ? delta_->out_off : delta_->in_off;
    const auto& rows = out ? delta_->out_rows : delta_->in_rows;
    if (off.empty())
        return {};
    return {rows.data() + off[v],
            static_cast<std::size_t>(off[v + 1] - off[v])};
}

DynamicGraph::DynamicGraph(std::shared_ptr<store::GraphStore> store)
    : store_(std::move(store)),
      base_(store_->base_ptr()),
      generation_(store_->generation())
{
}

GraphView
DynamicGraph::view() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return GraphView(base_, delta_, generation_);
}

std::uint64_t
DynamicGraph::generation() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return generation_;
}

std::size_t
DynamicGraph::pending_bytes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return delta_ ? delta_->bytes() : 0;
}

std::size_t
DynamicGraph::pending_entries() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return delta_ ? delta_->out_rows.size() + delta_->in_rows.size() : 0;
}

support::StatusOr<BatchEffect>
DynamicGraph::apply(const MutationBatch& batch)
{
    std::lock_guard<std::mutex> lock(mu_);
    const vid_t n = base_->num_vertices();
    for (const auto* list : {&batch.inserts, &batch.deletes}) {
        for (const graph::Edge& e : *list) {
            if (e.u < 0 || e.u >= n || e.v < 0 || e.v >= n) {
                return support::Status(
                    support::StatusCode::kInvalidInput,
                    "mutation endpoint out of [0, " + std::to_string(n) +
                        ")");
            }
        }
    }

    const bool directed = base_->is_directed();
    Fold out_fold{base_.get(), delta_.get(), /*out=*/true, {}};
    Fold in_fold{base_.get(), delta_.get(), /*out=*/false, {}};

    BatchEffect effect;
    effect.requested = batch.size();
    std::vector<vid_t> dirty;

    const auto fold_arc = [&](vid_t u, vid_t v, bool insert) {
        // The mirrored arc is folded in lockstep so the two directions
        // never disagree: undirected graphs store both arcs in the out
        // rows, directed graphs mirror u->v into v's in row.
        bool changed;
        if (directed) {
            changed = out_fold.arc(u, v, insert);
            const bool in_changed = in_fold.arc(v, u, insert);
            GM_ASSERT(changed == in_changed, "out/in delta rows diverged");
        } else {
            changed = out_fold.arc(u, v, insert);
            if (u != v) {
                const bool mirror = out_fold.arc(v, u, insert);
                GM_ASSERT(changed == mirror, "mirrored arc diverged");
            }
        }
        if (changed) {
            (insert ? effect.inserted_arcs : effect.deleted_arcs) +=
                (!directed && u != v) ? 2 : 1;
            (insert ? effect.inserted : effect.deleted).push_back({u, v});
            dirty.push_back(u);
            dirty.push_back(v);
        }
    };

    for (const graph::Edge& e : batch.inserts) {
        if (e.u == e.v)
            continue; // builder semantics: self-loops never stored
        fold_arc(e.u, e.v, /*insert=*/true);
    }
    for (const graph::Edge& e : batch.deletes) {
        if (e.u == e.v)
            continue;
        fold_arc(e.u, e.v, /*insert=*/false);
    }

    std::sort(dirty.begin(), dirty.end());
    dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
    effect.dirty = std::move(dirty);

    if (effect.changed()) {
        auto next = std::make_shared<DeltaSnapshot>();
        out_fold.emit(n, &next->out_off, &next->out_rows,
                      &next->out_deg_delta);
        if (directed)
            in_fold.emit(n, &next->in_off, &next->in_rows,
                         &next->in_deg_delta);
        next->arc_delta = 0;
        for (const std::int32_t d : next->out_deg_delta)
            next->arc_delta += d;
        delta_ = std::move(next);
        store_->set_overlay_bytes(delta_->bytes());
    }
    return effect;
}

std::uint64_t
DynamicGraph::compact()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!delta_)
        return generation_;

    const vid_t n = base_->num_vertices();
    const bool directed = base_->is_directed();
    const GraphView view(base_, delta_, generation_);

    const auto merge_direction = [&](bool out, std::vector<eid_t>* off,
                                     std::vector<vid_t>* nbr) {
        off->resize(static_cast<std::size_t>(n) + 1);
        (*off)[0] = 0;
        for (vid_t v = 0; v < n; ++v) {
            const eid_t deg = out ? view.out_degree(v) : view.in_degree(v);
            (*off)[v + 1] = (*off)[v] + deg;
        }
        nbr->resize(static_cast<std::size_t>((*off)[n]));
        // Independent per-vertex writes: width-invariant by construction.
        par::parallel_for<vid_t>(0, n, [&](vid_t v) {
            eid_t slot = (*off)[v];
            const auto emit = [&](vid_t t) { (*nbr)[slot++] = t; };
            if (out)
                view.for_out(v, emit);
            else
                view.for_in(v, emit);
        });
    };

    std::vector<eid_t> out_off;
    std::vector<vid_t> out_nbr;
    merge_direction(/*out=*/true, &out_off, &out_nbr);

    graph::CSRGraph next;
    if (directed) {
        std::vector<eid_t> in_off;
        std::vector<vid_t> in_nbr;
        merge_direction(/*out=*/false, &in_off, &in_nbr);
        next = graph::CSRGraph(n, true, std::move(out_off),
                               std::move(out_nbr), std::move(in_off),
                               std::move(in_nbr));
    } else {
        next = graph::CSRGraph(n, false, std::move(out_off),
                               std::move(out_nbr));
    }

    generation_ = store_->install_generation(std::move(next));
    store_->set_overlay_bytes(0);
    base_ = store_->base_ptr();
    delta_.reset();
    return generation_;
}

} // namespace gm::dyn
