#include "gm/harness/runner.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <thread>
#include <tuple>

#include "gm/gapref/verify.hh"
#include "gm/harness/checkpoint.hh"
#include "gm/obs/chrome_trace.hh"
#include "gm/obs/trace.hh"
#include "gm/support/fault_injector.hh"
#include "gm/support/log.hh"
#include "gm/support/timer.hh"
#include "gm/support/watchdog.hh"

namespace gm::harness
{

namespace
{

using support::Status;
using support::StatusCode;

/** Sources for trial @p t: SSSP/BFS take one, BC takes four. */
vid_t
trial_source(const Dataset& ds, int trial)
{
    return ds.sources[static_cast<std::size_t>(trial) % ds.sources.size()];
}

std::vector<vid_t>
trial_bc_sources(const Dataset& ds, int trial)
{
    std::vector<vid_t> sources;
    for (int i = 0; i < 4; ++i) {
        sources.push_back(
            ds.sources[static_cast<std::size_t>(trial * 4 + i) %
                       ds.sources.size()]);
    }
    return sources;
}

/** Everything a trial attempt produces besides its Status. */
struct TrialOutput
{
    double seconds = 0;
    bool verify_ok = true;
    std::string verify_err;
};

/**
 * Build every graph form this kernel may touch before the trial timer
 * starts.  Per the GAP rules, converting a graph into a framework's
 * native format is untimed, so the store's lazy builds must never land
 * inside the timed region.  Warming runs inside the supervised attempt,
 * so a fault injected into a form builder still hits the watchdog and
 * retry machinery rather than killing the sweep.
 */
void
warm_forms(const Dataset& ds, Kernel kernel, Mode mode)
{
    ds.g();
    switch (kernel) {
      case Kernel::kBFS:
      case Kernel::kCC:
      case Kernel::kPR:
      case Kernel::kBC:
        ds.grb();
        break;
      case Kernel::kSSSP:
        ds.wg();
        ds.grb_weighted();
        break;
      case Kernel::kTC:
        ds.g_undirected();
        if (mode == Mode::kOptimized)
            ds.g_relabeled();
        break;
    }
}

/**
 * Injection point *inside* the timed region, polled right after the trial
 * timer starts: slowdown faults (GM_FAULTS ":delay=<ms>") armed here land
 * in the measured wall time, which is how the perf-gate CI tier
 * manufactures a reproducible regression on one chosen cell.  Both the
 * broad site and the fully-qualified per-cell site are polled.
 */
void
timed_faults(const Dataset& ds, const Framework& fw, Kernel kernel)
{
    auto& injector = support::FaultInjector::global();
    if (!injector.enabled())
        return;
    injector.at("trial.timed");
    injector.at("trial.timed." + fw.name + "." + to_string(kernel) + "." +
                ds.name);
}

/**
 * One attempt of one trial: kernel (timed) + optional verification, run
 * inline on the calling thread.  Exceptions escape to the watchdog.
 */
void
run_trial_attempt(const Dataset& ds, const Framework& fw, Kernel kernel,
                  Mode mode, int trial, bool check, TrialOutput& out)
{
    // Fault-injection sites: all kernels, and per-framework targeting.
    auto& injector = support::FaultInjector::global();
    injector.at("kernel");
    injector.at("kernel." + fw.name);

    {
        obs::ScopedSpan span("warm_forms");
        warm_forms(ds, kernel, mode);
    }

    Timer timer;
    bool ok = true;
    std::string err;
    switch (kernel) {
      case Kernel::kBFS: {
          const vid_t src = trial_source(ds, trial);
          std::vector<vid_t> parent;
          {
              obs::ScopedSpan span("kernel");
              timer.start();
              timed_faults(ds, fw, kernel);
              parent = fw.bfs(ds, src, mode);
              timer.stop();
          }
          if (check) {
              obs::ScopedSpan span("verify");
              ok = gapref::verify_bfs(ds.g(), src, parent, &err);
          }
          break;
      }
      case Kernel::kSSSP: {
          const vid_t src = trial_source(ds, trial);
          std::vector<weight_t> dist;
          {
              obs::ScopedSpan span("kernel");
              timer.start();
              timed_faults(ds, fw, kernel);
              dist = fw.sssp(ds, src, mode);
              timer.stop();
          }
          if (check) {
              obs::ScopedSpan span("verify");
              ok = gapref::verify_sssp(ds.wg(), src, dist, &err);
          }
          break;
      }
      case Kernel::kCC: {
          std::vector<vid_t> comp;
          {
              obs::ScopedSpan span("kernel");
              timer.start();
              timed_faults(ds, fw, kernel);
              comp = fw.cc(ds, mode);
              timer.stop();
          }
          if (check) {
              obs::ScopedSpan span("verify");
              ok = gapref::verify_cc(ds.g(), comp, &err);
          }
          break;
      }
      case Kernel::kPR: {
          std::vector<score_t> scores;
          {
              obs::ScopedSpan span("kernel");
              timer.start();
              timed_faults(ds, fw, kernel);
              scores = fw.pr(ds, mode);
              timer.stop();
          }
          if (check) {
              obs::ScopedSpan span("verify");
              ok = gapref::verify_pagerank(ds.g(), scores, 0.85, 1e-4,
                                           &err);
          }
          break;
      }
      case Kernel::kBC: {
          const auto sources = trial_bc_sources(ds, trial);
          std::vector<score_t> scores;
          {
              obs::ScopedSpan span("kernel");
              timer.start();
              timed_faults(ds, fw, kernel);
              scores = fw.bc(ds, sources, mode);
              timer.stop();
          }
          if (check) {
              obs::ScopedSpan span("verify");
              ok = gapref::verify_bc(ds.g(), sources, scores, &err);
          }
          break;
      }
      case Kernel::kTC: {
          std::uint64_t count = 0;
          {
              obs::ScopedSpan span("kernel");
              timer.start();
              timed_faults(ds, fw, kernel);
              count = fw.tc(ds, mode);
              timer.stop();
          }
          if (check) {
              obs::ScopedSpan span("verify");
              ok = gapref::verify_tc(ds.g_undirected(), count, &err);
          }
          break;
      }
    }
    out.seconds = timer.seconds();
    out.verify_ok = ok;
    out.verify_err = std::move(err);
}

/** Should this failure be retried (transient) rather than recorded? */
bool
is_transient(StatusCode code)
{
    return code == StatusCode::kFaultInjected ||
           code == StatusCode::kKernelError;
}

} // namespace

std::string
to_string(FailureKind kind)
{
    switch (kind) {
      case FailureKind::kNone:
        return "none";
      case FailureKind::kTimeout:
        return "timeout";
      case FailureKind::kKernelError:
        return "kernel_error";
      case FailureKind::kWrongResult:
        return "wrong_result";
      case FailureKind::kUnsupported:
        return "unsupported";
      case FailureKind::kFaultInjected:
        return "fault_injected";
      case FailureKind::kInvalidInput:
        return "invalid_input";
    }
    return "?";
}

const char*
short_label(FailureKind kind)
{
    switch (kind) {
      case FailureKind::kNone:
        return "";
      case FailureKind::kTimeout:
        return "T/O";
      case FailureKind::kKernelError:
        return "ERR";
      case FailureKind::kWrongResult:
        return "WRONG";
      case FailureKind::kUnsupported:
        return "UNSUP";
      case FailureKind::kFaultInjected:
        return "FAULT";
      case FailureKind::kInvalidInput:
        return "BADIN";
    }
    return "?";
}

FailureKind
failure_kind_from_string(const std::string& name)
{
    for (FailureKind kind :
         {FailureKind::kNone, FailureKind::kTimeout,
          FailureKind::kKernelError, FailureKind::kWrongResult,
          FailureKind::kUnsupported, FailureKind::kFaultInjected,
          FailureKind::kInvalidInput}) {
        if (name == to_string(kind))
            return kind;
    }
    return FailureKind::kKernelError;
}

FailureKind
failure_kind_from_status(support::StatusCode code)
{
    switch (code) {
      case StatusCode::kOk:
        return FailureKind::kNone;
      case StatusCode::kTimeout:
      case StatusCode::kDeadlineExceeded:
      case StatusCode::kCancelled:
        return FailureKind::kTimeout;
      case StatusCode::kWrongResult:
        return FailureKind::kWrongResult;
      case StatusCode::kUnsupported:
        return FailureKind::kUnsupported;
      case StatusCode::kFaultInjected:
        return FailureKind::kFaultInjected;
      case StatusCode::kInvalidInput:
      case StatusCode::kCorruptData:
        return FailureKind::kInvalidInput;
      case StatusCode::kKernelError:
      case StatusCode::kResourceExhausted: // never produced by a trial
      case StatusCode::kUnavailable:       // serving-layer only
        return FailureKind::kKernelError;
    }
    return FailureKind::kKernelError;
}

CellResult
run_cell(const Dataset& ds, const Framework& fw, Kernel kernel, Mode mode,
         const RunOptions& opts)
{
    CellResult cell;
    cell.best_seconds = std::numeric_limits<double>::infinity();
    cell.verified = true;
    double total = 0;
    const int max_attempts = opts.max_attempts < 1 ? 1 : opts.max_attempts;

    const bool profile = opts.profile_enabled();
    const std::string cell_label = to_string(mode) + "/" + fw.name + "/" +
                                   to_string(kernel) + "/" + ds.name;
    obs::ChromeTraceWriter trace_writer(cell_label);

    std::ofstream metrics_out;
    if (!opts.metrics_path.empty()) {
        metrics_out.open(opts.metrics_path, std::ios::out | std::ios::app);
        if (!metrics_out) {
            log_warn("cannot open metrics stream ", opts.metrics_path,
                     "; per-trial metrics will not be recorded");
        }
    }

    // Untimed warm-up trials: same supervised execution path as real
    // trials so hangs and faults still hit the watchdog, but nothing is
    // recorded — they exist only to populate caches (and the page cache /
    // branch predictors) before measurement.  Each one is wrapped in a
    // "warmup" span so Chrome traces show where measurement really began.
    for (int w = 0; w < opts.warmup; ++w) {
        auto out = std::make_shared<TrialOutput>();
        obs::TraceSession session;
        if (profile)
            session.start();
        const std::uint64_t session_gen = session.gen();
        const Status status = support::run_with_watchdog(
            [out, &ds, &fw, kernel, mode, w, session_gen] {
                obs::SessionBinding bind(session_gen);
                obs::ScopedSpan span("warmup");
                run_trial_attempt(ds, fw, kernel, mode, w,
                                  /*check=*/false, *out);
            },
            opts.trial_timeout_ms);
        session.stop();
        if (!opts.trace_dir.empty())
            trace_writer.add_session(session,
                                     "warmup " + std::to_string(w));
        if (!status.is_ok()) {
            // Not a DNF: the timed trials below render the real verdict.
            log_warn(fw.name, " ", to_string(kernel), " on ", ds.name,
                     " warm-up ", w, " failed (", status.to_string(),
                     "); proceeding to timed trials");
        }
    }

    for (int trial = 0; trial < opts.trials; ++trial) {
        const bool check =
            opts.verify && (!opts.verify_first_trial_only || trial == 0);

        // The trial output is heap-owned and the closure captures only
        // values: if the watchdog abandons a hung worker, the stray thread
        // may finish long after this stack frame is gone, so it must never
        // write through references into it.  (ds and fw are caller-owned
        // and outlive the sweep.)
        auto out = std::make_shared<TrialOutput>();
        Status status = Status::ok();
        int last_attempt = 0;
        obs::TraceSession session;
        for (int attempt = 1; attempt <= max_attempts; ++attempt) {
            ++cell.attempts;
            last_attempt = attempt;
            out = std::make_shared<TrialOutput>();
            // One trace session per attempt.  The worker (and every pool
            // lane it drives) is bound to the session's generation, so a
            // watchdog-abandoned attempt keeps writing under a dead
            // generation and its stragglers are dropped at collection
            // instead of polluting the next attempt's session.
            if (profile)
                session.start();
            const std::uint64_t session_gen = session.gen();
            status = support::run_with_watchdog(
                [out, &ds, &fw, kernel, mode, trial, check, session_gen] {
                    obs::SessionBinding bind(session_gen);
                    run_trial_attempt(ds, fw, kernel, mode, trial, check,
                                      *out);
                },
                opts.trial_timeout_ms);
            session.stop();
            if (!opts.trace_dir.empty()) {
                trace_writer.add_session(
                    session, "trial " + std::to_string(trial) +
                                 " attempt " + std::to_string(attempt));
            }
            if (status.is_ok())
                break;
            if (!is_transient(status.code()) || attempt == max_attempts)
                break;
            // Exponential backoff, exponent-capped and saturated so the
            // shift stays defined for arbitrarily large --max-attempts.
            const long long backoff = std::min<long long>(
                static_cast<long long>(opts.retry_backoff_ms)
                    << std::min(attempt - 1, 10),
                60'000);
            log_warn(fw.name, " ", to_string(kernel), " on ", ds.name,
                     " trial ", trial, " attempt ", attempt, " failed (",
                     status.to_string(), "); retrying in ", backoff, " ms");
            if (backoff > 0) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(backoff));
            }
        }

        if (!status.is_ok()) {
            // DNF: record why and stop burning deadline on more trials.
            cell.failure = failure_kind_from_status(status.code());
            cell.failure_message = status.message();
            cell.verified = false;
            log_warn(fw.name, " ", to_string(kernel), " on ", ds.name,
                     " DNF after ", cell.attempts, " attempt(s): ",
                     status.to_string());
            break;
        }

        if (!out->verify_ok) {
            log_warn(fw.name, " ", to_string(kernel), " on ", ds.name,
                     " failed verification: ", out->verify_err);
            cell.verified = false;
            cell.failure = FailureKind::kWrongResult;
            if (cell.failure_message.empty())
                cell.failure_message = out->verify_err;
        }
        cell.best_seconds = std::min(cell.best_seconds, out->seconds);
        total += out->seconds;
        cell.trial_seconds.push_back(out->seconds);
        ++cell.trials;

        if (profile) {
            obs::TrialMetrics metrics = obs::summarize(session);
            metrics.peak_bytes = ds.store()->bytes_high_water();
            if (metrics_out.is_open()) {
                obs::MetricsRecord rec;
                rec.mode = to_string(mode);
                rec.framework = fw.name;
                rec.kernel = to_string(kernel);
                rec.graph = ds.name;
                rec.trial = trial;
                rec.attempt = last_attempt;
                rec.metrics = metrics;
                metrics_out << obs::metrics_record_line(rec) << '\n';
                metrics_out.flush();
            }
            cell.metrics = std::move(metrics);
        }
    }

    cell.avg_seconds = cell.trials > 0 ? total / cell.trials : 0;
    if (cell.trials == 0)
        cell.best_seconds = 0;

    if (!opts.trace_dir.empty() && !trace_writer.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opts.trace_dir, ec);
        const std::string file = to_string(mode) + "_" + fw.name + "_" +
                                 to_string(kernel) + "_" + ds.name +
                                 ".json";
        const std::string path =
            (std::filesystem::path(opts.trace_dir) / file).string();
        if (Status s = trace_writer.write(path); !s.is_ok()) {
            log_warn("cannot write trace for ", cell_label, ": ",
                     s.to_string());
        }
    }
    return cell;
}

ResultsCube
run_suite(const DatasetSuite& suite,
          const std::vector<Framework>& frameworks, Mode mode,
          const RunOptions& opts)
{
    ResultsCube cube;
    for (const auto& fw : frameworks)
        cube.framework_names.push_back(fw.name);
    for (const auto& ds : suite.datasets)
        cube.graph_names.push_back(ds->name);

    // Cells already completed in a previous (killed) run of this sweep.
    std::map<std::tuple<std::string, std::string, std::string>, CellResult>
        resumed;
    if (!opts.resume_path.empty()) {
        auto records = load_checkpoint(opts.resume_path);
        if (!records.is_ok()) {
            log_warn("cannot resume from ", opts.resume_path, ": ",
                     records.status().to_string(), "; running all cells");
        } else {
            for (const CheckpointRecord& rec : *records) {
                if (rec.mode != to_string(mode))
                    continue;
                resumed[{rec.framework, rec.kernel, rec.graph}] = rec.cell;
            }
            log_info("resuming ", to_string(mode), " sweep: ",
                     resumed.size(), " cell(s) restored from ",
                     opts.resume_path);
        }
    }

    std::ofstream checkpoint;
    if (!opts.checkpoint_path.empty()) {
        checkpoint.open(opts.checkpoint_path,
                        std::ios::out | std::ios::app);
        if (!checkpoint) {
            log_warn("cannot open checkpoint ", opts.checkpoint_path,
                     "; sweep will not be resumable");
        }
    }

    cube.cells.resize(frameworks.size());
    for (std::size_t f = 0; f < frameworks.size(); ++f) {
        cube.cells[f].resize(std::size(kAllKernels));
        for (Kernel kernel : kAllKernels)
            cube.cells[f][static_cast<std::size_t>(kernel)].resize(
                suite.size());
    }
    cube.graph_peak_bytes.assign(suite.size(), 0);

    // Graph-major order: every cell touching graph g runs before the
    // first cell of graph g+1, so evict_per_graph bounds the sweep's
    // footprint by one graph's derived artifacts.  Checkpoints are keyed
    // by (mode, framework, kernel, graph), not by position, so resume
    // files written under either loop order stay compatible.
    for (std::size_t g = 0; g < suite.size(); ++g) {
        for (std::size_t f = 0; f < frameworks.size(); ++f) {
            for (Kernel kernel : kAllKernels) {
                auto& row = cube.cells[f][static_cast<std::size_t>(kernel)];
                const auto key = std::make_tuple(
                    frameworks[f].name, to_string(kernel), suite[g].name);
                if (const auto it = resumed.find(key);
                    it != resumed.end()) {
                    row[g] = it->second;
                    log_info(to_string(mode), " ", frameworks[f].name, " ",
                             to_string(kernel), " ", suite[g].name,
                             ": restored from checkpoint");
                    continue;
                }
                row[g] = run_cell(suite[g], frameworks[f], kernel, mode,
                                  opts);
                log_info(to_string(mode), " ", frameworks[f].name, " ",
                         to_string(kernel), " ", suite[g].name, ": ",
                         row[g].avg_seconds, " s",
                         row[g].completed() ? "" : " (DNF)");
                if (checkpoint.is_open()) {
                    append_checkpoint(
                        checkpoint,
                        CheckpointRecord{to_string(mode),
                                         frameworks[f].name,
                                         to_string(kernel), suite[g].name,
                                         row[g]});
                }
            }
        }
        cube.graph_peak_bytes[g] = suite[g].bytes_resident();
        if (opts.evict_per_graph) {
            suite[g].evict_derived();
            log_info(suite[g].name, ": peak ", cube.graph_peak_bytes[g],
                     " bytes of graph artifacts; derived forms evicted");
        }
    }
    return cube;
}

} // namespace gm::harness
