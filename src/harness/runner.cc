#include "gm/harness/runner.hh"

#include <limits>

#include "gm/gapref/verify.hh"
#include "gm/support/log.hh"
#include "gm/support/timer.hh"

namespace gm::harness
{

namespace
{

/** Sources for trial @p t: SSSP/BFS take one, BC takes four. */
vid_t
trial_source(const Dataset& ds, int trial)
{
    return ds.sources[static_cast<std::size_t>(trial) % ds.sources.size()];
}

std::vector<vid_t>
trial_bc_sources(const Dataset& ds, int trial)
{
    std::vector<vid_t> sources;
    for (int i = 0; i < 4; ++i) {
        sources.push_back(
            ds.sources[static_cast<std::size_t>(trial * 4 + i) %
                       ds.sources.size()]);
    }
    return sources;
}

} // namespace

CellResult
run_cell(const Dataset& ds, const Framework& fw, Kernel kernel, Mode mode,
         const RunOptions& opts)
{
    CellResult cell;
    cell.best_seconds = std::numeric_limits<double>::infinity();
    cell.verified = true;
    double total = 0;

    for (int trial = 0; trial < opts.trials; ++trial) {
        const bool check =
            opts.verify && (!opts.verify_first_trial_only || trial == 0);
        Timer timer;
        std::string err;
        bool ok = true;

        switch (kernel) {
          case Kernel::kBFS: {
              const vid_t src = trial_source(ds, trial);
              timer.start();
              const auto parent = fw.bfs(ds, src, mode);
              timer.stop();
              if (check)
                  ok = gapref::verify_bfs(ds.g, src, parent, &err);
              break;
          }
          case Kernel::kSSSP: {
              const vid_t src = trial_source(ds, trial);
              timer.start();
              const auto dist = fw.sssp(ds, src, mode);
              timer.stop();
              if (check)
                  ok = gapref::verify_sssp(ds.wg, src, dist, &err);
              break;
          }
          case Kernel::kCC: {
              timer.start();
              const auto comp = fw.cc(ds, mode);
              timer.stop();
              if (check)
                  ok = gapref::verify_cc(ds.g, comp, &err);
              break;
          }
          case Kernel::kPR: {
              timer.start();
              const auto scores = fw.pr(ds, mode);
              timer.stop();
              if (check)
                  ok = gapref::verify_pagerank(ds.g, scores, 0.85, 1e-4,
                                               &err);
              break;
          }
          case Kernel::kBC: {
              const auto sources = trial_bc_sources(ds, trial);
              timer.start();
              const auto scores = fw.bc(ds, sources, mode);
              timer.stop();
              if (check)
                  ok = gapref::verify_bc(ds.g, sources, scores, &err);
              break;
          }
          case Kernel::kTC: {
              timer.start();
              const std::uint64_t count = fw.tc(ds, mode);
              timer.stop();
              if (check)
                  ok = gapref::verify_tc(ds.g_undirected, count, &err);
              break;
          }
        }

        if (!ok) {
            log_warn(fw.name, " ", to_string(kernel), " on ", ds.name,
                     " failed verification: ", err);
            cell.verified = false;
        }
        const double secs = timer.seconds();
        cell.best_seconds = std::min(cell.best_seconds, secs);
        total += secs;
        ++cell.trials;
    }
    cell.avg_seconds = cell.trials > 0 ? total / cell.trials : 0;
    return cell;
}

ResultsCube
run_suite(const DatasetSuite& suite,
          const std::vector<Framework>& frameworks, Mode mode,
          const RunOptions& opts)
{
    ResultsCube cube;
    for (const auto& fw : frameworks)
        cube.framework_names.push_back(fw.name);
    for (const auto& ds : suite.datasets)
        cube.graph_names.push_back(ds->name);

    cube.cells.resize(frameworks.size());
    for (std::size_t f = 0; f < frameworks.size(); ++f) {
        cube.cells[f].resize(std::size(kAllKernels));
        for (Kernel kernel : kAllKernels) {
            auto& row = cube.cells[f][static_cast<std::size_t>(kernel)];
            row.resize(suite.size());
            for (std::size_t g = 0; g < suite.size(); ++g) {
                row[g] = run_cell(suite[g], frameworks[f], kernel, mode,
                                  opts);
                log_info(to_string(mode), " ", frameworks[f].name, " ",
                         to_string(kernel), " ", suite[g].name, ": ",
                         row[g].avg_seconds, " s");
            }
        }
    }
    return cube;
}

} // namespace gm::harness
