#include "gm/harness/dataset.hh"

#include <cmath>

#include "gm/graph/generators.hh"
#include "gm/support/log.hh"
#include "gm/support/rng.hh"

namespace gm::harness
{

support::StatusOr<Dataset>
try_make_dataset(std::string name, graph::CSRGraph g, int num_sources,
                 std::uint64_t seed)
{
    if (g.num_vertices() == 0 || g.num_edges_directed() == 0) {
        return support::Status(support::StatusCode::kInvalidInput,
                               "dataset '" + name +
                                   "' has no vertices or no edges");
    }
    try {
        // Derived forms are lazy (the store builds each on first access);
        // only the base-graph statistics and sources are computed eagerly.
        Dataset ds(std::make_shared<store::GraphStore>(std::move(g),
                                                       seed ^ 0x5eed));
        ds.name = std::move(name);
        const graph::CSRGraph& base = ds.g();

        ds.distribution = graph::classify_degree_distribution(base);
        ds.approx_diameter = graph::approx_diameter(base);
        // Scaled-down analogue of the paper's high/low diameter split: a
        // diameter past sqrt(n) says "mesh-like" (Road), far beyond the
        // O(log n) diameters of the power-law and uniform graphs.
        ds.high_diameter =
            static_cast<double>(ds.approx_diameter) >
            std::sqrt(static_cast<double>(base.num_vertices()));

        Xoshiro256 rng(seed);
        while (static_cast<int>(ds.sources.size()) < num_sources) {
            const vid_t v =
                static_cast<vid_t>(rng.next_bounded(base.num_vertices()));
            if (base.out_degree(v) > 0)
                ds.sources.push_back(v);
        }
        return ds;
    } catch (...) {
        return support::current_exception_status();
    }
}

Dataset
make_dataset(std::string name, graph::CSRGraph g, int num_sources,
             std::uint64_t seed)
{
    auto ds = try_make_dataset(std::move(name), std::move(g), num_sources,
                               seed);
    if (!ds.is_ok())
        fatal(ds.status().to_string());
    return *std::move(ds);
}

std::vector<std::string>
gap_suite_graph_names()
{
    return {"Road", "Twitter", "Web", "Kron", "Urand"};
}

DatasetSuite
make_gap_suite(int scale, int num_sources, std::uint64_t seed)
{
    GM_ASSERT(scale >= 6 && scale <= 24, "suite scale out of range");
    DatasetSuite suite;
    const int degree = 16;

    // Matching Table I's ordering: real graphs (Road, Twitter, Web), then
    // synthetic (Kron, Urand).  Road's grid is sized to ~2^scale vertices.
    const vid_t side = static_cast<vid_t>(1) << (scale / 2);
    const vid_t rows = side;
    const vid_t cols = (vid_t{1} << scale) / side;

    suite.datasets.push_back(std::make_shared<Dataset>(make_dataset(
        "Road", graph::make_road_like(rows, cols, seed + 1), num_sources,
        seed + 11)));
    suite.datasets.back()->delta = 16; // high diameter: narrower buckets

    suite.datasets.push_back(std::make_shared<Dataset>(make_dataset(
        "Twitter", graph::make_twitter_like(scale, degree, seed + 2),
        num_sources, seed + 12)));
    suite.datasets.push_back(std::make_shared<Dataset>(make_dataset(
        "Web", graph::make_web_like(scale, 12, seed + 3), num_sources,
        seed + 13)));
    suite.datasets.push_back(std::make_shared<Dataset>(make_dataset(
        "Kron", graph::make_kronecker(scale, degree, seed + 4), num_sources,
        seed + 14)));
    suite.datasets.push_back(std::make_shared<Dataset>(make_dataset(
        "Urand", graph::make_uniform(scale, degree, seed + 5), num_sources,
        seed + 15)));
    return suite;
}

} // namespace gm::harness
