#include "gm/harness/checkpoint.hh"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "gm/support/log.hh"

namespace gm::harness
{

namespace
{

using support::Status;
using support::StatusCode;
using support::StatusOr;

/** JSON-escape a string value (quotes, backslashes, control chars). */
std::string
json_escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Round-trippable double formatting (17 significant digits). */
std::string
format_double(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/**
 * Minimal parser for the flat JSON objects checkpoint_line() emits: one
 * level of {"key": value} where value is a string, number, or bool.  Not a
 * general JSON parser — torn or foreign lines simply fail to parse, which
 * is exactly what the loader wants.
 */
class FlatJsonParser
{
  public:
    explicit FlatJsonParser(const std::string& text) : text_(text) {}

    Status
    parse(std::map<std::string, std::string>& fields)
    {
        skip_ws();
        if (!eat('{'))
            return corrupt("expected '{'");
        skip_ws();
        if (eat('}'))
            return finish(fields);
        for (;;) {
            std::string key;
            if (Status s = parse_string(key); !s.is_ok())
                return s;
            skip_ws();
            if (!eat(':'))
                return corrupt("expected ':'");
            skip_ws();
            std::string value;
            if (Status s = parse_value(value); !s.is_ok())
                return s;
            fields_[key] = value;
            skip_ws();
            if (eat(',')) {
                skip_ws();
                continue;
            }
            if (eat('}'))
                return finish(fields);
            return corrupt("expected ',' or '}'");
        }
    }

  private:
    Status
    finish(std::map<std::string, std::string>& fields)
    {
        skip_ws();
        if (pos_ != text_.size())
            return corrupt("trailing garbage after object");
        fields = std::move(fields_);
        return Status::ok();
    }

    Status
    corrupt(const std::string& what)
    {
        return Status(StatusCode::kCorruptData,
                      "checkpoint line: " + what);
    }

    void
    skip_ws()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    eat(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    Status
    parse_string(std::string& out)
    {
        if (!eat('"'))
            return corrupt("expected '\"'");
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return Status::ok();
            if (c == '\\') {
                if (pos_ >= text_.size())
                    break;
                char esc = text_[pos_++];
                switch (esc) {
                  case '"':
                    out += '"';
                    break;
                  case '\\':
                    out += '\\';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'u': {
                      if (pos_ + 4 > text_.size())
                          return corrupt("truncated \\u escape");
                      unsigned code = 0;
                      for (int i = 0; i < 4; ++i) {
                          char h = text_[pos_++];
                          code <<= 4;
                          if (h >= '0' && h <= '9')
                              code |= static_cast<unsigned>(h - '0');
                          else if (h >= 'a' && h <= 'f')
                              code |= static_cast<unsigned>(h - 'a' + 10);
                          else if (h >= 'A' && h <= 'F')
                              code |= static_cast<unsigned>(h - 'A' + 10);
                          else
                              return corrupt("bad \\u escape");
                      }
                      // We only ever emit \u00xx for control bytes.
                      out += static_cast<char>(code & 0xff);
                      break;
                  }
                  default:
                    return corrupt("unknown escape");
                }
            } else {
                out += c;
            }
        }
        return corrupt("unterminated string");
    }

    Status
    parse_value(std::string& out)
    {
        if (pos_ < text_.size() && text_[pos_] == '"')
            return parse_string(out);
        // Bare token: number / true / false.
        const std::size_t start = pos_;
        while (pos_ < text_.size() && text_[pos_] != ',' &&
               text_[pos_] != '}' &&
               !std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (pos_ == start)
            return corrupt("empty value");
        out = text_.substr(start, pos_ - start);
        return Status::ok();
    }

    const std::string& text_;
    std::size_t pos_ = 0;
    std::map<std::string, std::string> fields_;
};

/** Fetch a required field or fail with kCorruptData. */
Status
require(const std::map<std::string, std::string>& fields,
        const std::string& key, std::string& out)
{
    const auto it = fields.find(key);
    if (it == fields.end()) {
        return Status(StatusCode::kCorruptData,
                      "checkpoint line: missing field '" + key + "'");
    }
    out = it->second;
    return Status::ok();
}

} // namespace

std::string
checkpoint_line(const CheckpointRecord& record)
{
    std::ostringstream out;
    out << "{\"mode\":\"" << json_escape(record.mode) << "\""
        << ",\"framework\":\"" << json_escape(record.framework) << "\""
        << ",\"kernel\":\"" << json_escape(record.kernel) << "\""
        << ",\"graph\":\"" << json_escape(record.graph) << "\""
        << ",\"best_seconds\":" << format_double(record.cell.best_seconds)
        << ",\"avg_seconds\":" << format_double(record.cell.avg_seconds)
        << ",\"trials\":" << record.cell.trials
        << ",\"attempts\":" << record.cell.attempts
        << ",\"verified\":" << (record.cell.verified ? "true" : "false")
        << ",\"supported\":" << (record.cell.supported ? "true" : "false")
        << ",\"failure\":\"" << json_escape(to_string(record.cell.failure))
        << "\""
        << ",\"failure_message\":\""
        << json_escape(record.cell.failure_message) << "\"}";
    return out.str();
}

StatusOr<CheckpointRecord>
parse_checkpoint_line(const std::string& line)
{
    std::map<std::string, std::string> fields;
    FlatJsonParser parser(line);
    if (Status s = parser.parse(fields); !s.is_ok())
        return s;

    CheckpointRecord rec;
    std::string best, avg, trials, verified, failure;
    if (Status s = require(fields, "mode", rec.mode); !s.is_ok())
        return s;
    if (Status s = require(fields, "framework", rec.framework); !s.is_ok())
        return s;
    if (Status s = require(fields, "kernel", rec.kernel); !s.is_ok())
        return s;
    if (Status s = require(fields, "graph", rec.graph); !s.is_ok())
        return s;
    if (Status s = require(fields, "best_seconds", best); !s.is_ok())
        return s;
    if (Status s = require(fields, "avg_seconds", avg); !s.is_ok())
        return s;
    if (Status s = require(fields, "trials", trials); !s.is_ok())
        return s;
    if (Status s = require(fields, "verified", verified); !s.is_ok())
        return s;
    if (Status s = require(fields, "failure", failure); !s.is_ok())
        return s;

    try {
        rec.cell.best_seconds = std::stod(best);
        rec.cell.avg_seconds = std::stod(avg);
        rec.cell.trials = std::stoi(trials);
    } catch (const std::exception&) {
        return Status(StatusCode::kCorruptData,
                      "checkpoint line: non-numeric timing field");
    }
    rec.cell.verified = verified == "true";
    rec.cell.failure = failure_kind_from_string(failure);

    // Optional fields (older checkpoints may lack them).
    if (const auto it = fields.find("attempts"); it != fields.end()) {
        try {
            rec.cell.attempts = std::stoi(it->second);
        } catch (const std::exception&) {
            rec.cell.attempts = rec.cell.trials;
        }
    }
    if (const auto it = fields.find("supported"); it != fields.end())
        rec.cell.supported = it->second == "true";
    if (const auto it = fields.find("failure_message"); it != fields.end())
        rec.cell.failure_message = it->second;
    return rec;
}

StatusOr<std::vector<CheckpointRecord>>
load_checkpoint(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        return Status(StatusCode::kInvalidInput,
                      "cannot open checkpoint file: " + path);
    }
    std::vector<CheckpointRecord> records;
    std::string line;
    int line_no = 0;
    int skipped = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        auto rec = parse_checkpoint_line(line);
        if (!rec.is_ok()) {
            // Typically the torn final line of a killed run.
            log_warn(path, ":", line_no,
                     ": skipping unreadable checkpoint record (",
                     rec.status().message(), ")");
            ++skipped;
            continue;
        }
        records.push_back(*std::move(rec));
    }
    if (skipped > 0) {
        log_warn(path, ": ", skipped,
                 " unreadable record(s) skipped; those cells will rerun");
    }
    return records;
}

void
append_checkpoint(std::ostream& out, const CheckpointRecord& record)
{
    out << checkpoint_line(record) << '\n';
    out.flush();
}

} // namespace gm::harness
