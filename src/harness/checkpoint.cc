#include "gm/harness/checkpoint.hh"

#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "gm/obs/metrics.hh"
#include "gm/support/json.hh"
#include "gm/support/log.hh"

namespace gm::harness
{

namespace
{

using support::Status;
using support::StatusCode;
using support::StatusOr;
using support::json_double;
using support::json_escape;

/** Fetch a required field or fail with kCorruptData. */
Status
require(const std::map<std::string, std::string>& fields,
        const std::string& key, std::string& out)
{
    const auto it = fields.find(key);
    if (it == fields.end()) {
        return Status(StatusCode::kCorruptData,
                      "checkpoint line: missing field '" + key + "'");
    }
    out = it->second;
    return Status::ok();
}

} // namespace

std::string
checkpoint_line(const CheckpointRecord& record)
{
    // "v":3 marks lines carrying the raw trial vector (and the v2 metrics
    // blob); parse_checkpoint_line still accepts v2 and unversioned (v1)
    // lines from older sweeps.
    std::ostringstream out;
    out << "{\"v\":3"
        << ",\"mode\":\"" << json_escape(record.mode) << "\""
        << ",\"framework\":\"" << json_escape(record.framework) << "\""
        << ",\"kernel\":\"" << json_escape(record.kernel) << "\""
        << ",\"graph\":\"" << json_escape(record.graph) << "\""
        << ",\"best_seconds\":" << json_double(record.cell.best_seconds)
        << ",\"avg_seconds\":" << json_double(record.cell.avg_seconds)
        << ",\"trials\":" << record.cell.trials
        << ",\"attempts\":" << record.cell.attempts
        << ",\"verified\":" << (record.cell.verified ? "true" : "false")
        << ",\"supported\":" << (record.cell.supported ? "true" : "false")
        << ",\"failure\":\"" << json_escape(to_string(record.cell.failure))
        << "\""
        << ",\"failure_message\":\""
        << json_escape(record.cell.failure_message) << "\"";
    if (!record.cell.trial_seconds.empty()) {
        out << ",\"trial_seconds\":"
            << support::json_double_array(record.cell.trial_seconds);
    }
    if (!record.cell.metrics.empty())
        out << ",\"metrics\":" << obs::metrics_json(record.cell.metrics);
    out << "}";
    return out.str();
}

StatusOr<CheckpointRecord>
parse_checkpoint_line(const std::string& line)
{
    std::map<std::string, std::string> fields;
    if (Status s = support::parse_flat_json(line, fields); !s.is_ok())
        return s;

    CheckpointRecord rec;
    std::string best, avg, trials, verified, failure;
    if (Status s = require(fields, "mode", rec.mode); !s.is_ok())
        return s;
    if (Status s = require(fields, "framework", rec.framework); !s.is_ok())
        return s;
    if (Status s = require(fields, "kernel", rec.kernel); !s.is_ok())
        return s;
    if (Status s = require(fields, "graph", rec.graph); !s.is_ok())
        return s;
    if (Status s = require(fields, "best_seconds", best); !s.is_ok())
        return s;
    if (Status s = require(fields, "avg_seconds", avg); !s.is_ok())
        return s;
    if (Status s = require(fields, "trials", trials); !s.is_ok())
        return s;
    if (Status s = require(fields, "verified", verified); !s.is_ok())
        return s;
    if (Status s = require(fields, "failure", failure); !s.is_ok())
        return s;

    try {
        rec.cell.best_seconds = std::stod(best);
        rec.cell.avg_seconds = std::stod(avg);
        rec.cell.trials = std::stoi(trials);
    } catch (const std::exception&) {
        return Status(StatusCode::kCorruptData,
                      "checkpoint line: non-numeric timing field");
    }
    rec.cell.verified = verified == "true";
    rec.cell.failure = failure_kind_from_string(failure);

    // Optional fields (v1 checkpoints lack some or all of them).
    if (const auto it = fields.find("attempts"); it != fields.end()) {
        try {
            rec.cell.attempts = std::stoi(it->second);
        } catch (const std::exception&) {
            rec.cell.attempts = rec.cell.trials;
        }
    }
    if (const auto it = fields.find("supported"); it != fields.end())
        rec.cell.supported = it->second == "true";
    if (const auto it = fields.find("failure_message"); it != fields.end())
        rec.cell.failure_message = it->second;
    if (const auto it = fields.find("trial_seconds"); it != fields.end()) {
        // v3 field; v1/v2 cells resume with an empty sample vector, which
        // the perf pipeline treats as "no raw samples recorded".
        if (Status s = support::parse_json_double_array(
                it->second, rec.cell.trial_seconds);
            !s.is_ok())
            return s;
    }
    if (const auto it = fields.find("metrics"); it != fields.end()) {
        auto metrics = obs::parse_metrics_json(it->second);
        if (!metrics.is_ok())
            return metrics.status();
        rec.cell.metrics = *std::move(metrics);
    }
    return rec;
}

StatusOr<std::vector<CheckpointRecord>>
load_checkpoint(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        return Status(StatusCode::kInvalidInput,
                      "cannot open checkpoint file: " + path);
    }
    std::vector<CheckpointRecord> records;
    std::string line;
    int line_no = 0;
    int skipped = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        auto rec = parse_checkpoint_line(line);
        if (!rec.is_ok()) {
            // Typically the torn final line of a killed run.
            log_warn(path, ":", line_no,
                     ": skipping unreadable checkpoint record (",
                     rec.status().message(), ")");
            ++skipped;
            continue;
        }
        records.push_back(*std::move(rec));
    }
    if (skipped > 0) {
        log_warn(path, ": ", skipped,
                 " unreadable record(s) skipped; those cells will rerun");
    }
    return records;
}

void
append_checkpoint(std::ostream& out, const CheckpointRecord& record)
{
    out << checkpoint_line(record) << '\n';
    out.flush();
}

} // namespace gm::harness
