#include "gm/harness/framework.hh"

#include "gm/galoislite/kernels.hh"
#include "gm/gapref/kernels.hh"
#include "gm/gkc/kernels.hh"
#include "gm/graphitlite/kernels.hh"
#include "gm/grb/lagraph.hh"
#include "gm/nwlite/algorithms.hh"

namespace gm::harness
{

std::string
to_string(Kernel kernel)
{
    switch (kernel) {
      case Kernel::kBFS:
        return "BFS";
      case Kernel::kSSSP:
        return "SSSP";
      case Kernel::kCC:
        return "CC";
      case Kernel::kPR:
        return "PR";
      case Kernel::kBC:
        return "BC";
      case Kernel::kTC:
        return "TC";
    }
    return "?";
}

std::string
to_string(Mode mode)
{
    return mode == Mode::kBaseline ? "Baseline" : "Optimized";
}

namespace
{

Framework
make_gap_reference()
{
    Framework fw;
    fw.name = "GAP";
    fw.bfs = [](const Dataset& ds, vid_t src, Mode) {
        return gapref::bfs(ds.g(), src);
    };
    fw.sssp = [](const Dataset& ds, vid_t src, Mode) {
        return gapref::sssp(ds.wg(), src, ds.delta);
    };
    fw.cc = [](const Dataset& ds, Mode) { return gapref::cc_afforest(ds.g()); };
    fw.pr = [](const Dataset& ds, Mode) {
        // Run to the 1e-4 tolerance like every other framework (the
        // GAPBS default 20-iteration cap would make PR comparisons an
        // iteration-count artifact rather than an algorithm comparison).
        return gapref::pagerank(ds.g(), 0.85, 1e-4, 100);
    };
    fw.bc = [](const Dataset& ds, const std::vector<vid_t>& sources, Mode) {
        return gapref::bc(ds.g(), sources);
    };
    fw.tc = [](const Dataset& ds, Mode) {
        return gapref::tc(ds.g_undirected());
    };
    return fw;
}

Framework
make_suitesparse()
{
    // SuiteSparse/LAGraph made only minimal changes between modes in the
    // paper (its Optimized gains came from hyperthreading, which this
    // substrate does not model), so both modes run the same algorithms.
    Framework fw;
    fw.name = "SuiteSparse";
    fw.bfs = [](const Dataset& ds, vid_t src, Mode) {
        return grb::lagraph::bfs_parent(ds.grb(), src);
    };
    fw.sssp = [](const Dataset& ds, vid_t src, Mode) {
        return grb::lagraph::sssp(ds.grb_weighted(), src, ds.delta);
    };
    fw.cc = [](const Dataset& ds, Mode) {
        return grb::lagraph::cc_fastsv(ds.grb());
    };
    fw.pr = [](const Dataset& ds, Mode) {
        return grb::lagraph::pagerank(ds.grb());
    };
    fw.bc = [](const Dataset& ds, const std::vector<vid_t>& sources, Mode) {
        return grb::lagraph::bc(ds.grb(), sources);
    };
    fw.tc = [](const Dataset& ds, Mode) {
        return grb::lagraph::tc(ds.g_undirected());
    };
    return fw;
}

Framework
make_galois()
{
    // Galois changed the most between modes: Baseline picks sync/async by
    // sampling the degree distribution (power law => assume low diameter);
    // Optimized picks by the graph's known diameter class, uses the
    // edge-blocked Afforest where load balance matters, and counts
    // triangles on a pre-relabeled graph without paying the relabel.
    Framework fw;
    fw.name = "Galois";
    auto use_async = [](const Dataset& ds, Mode mode) {
        if (mode == Mode::kBaseline)
            return galoislite::pick_async_by_sampling(ds.g());
        return ds.high_diameter; // Urand is low-diameter: bulk-sync wins
    };
    fw.bfs = [use_async](const Dataset& ds, vid_t src, Mode mode) {
        return use_async(ds, mode) ? galoislite::bfs_async(ds.g(), src)
                                   : galoislite::bfs_sync(ds.g(), src);
    };
    fw.sssp = [use_async](const Dataset& ds, vid_t src, Mode mode) {
        return use_async(ds, mode)
                   ? galoislite::sssp_async(ds.wg(), src, ds.delta)
                   : galoislite::sssp_sync(ds.wg(), src, ds.delta);
    };
    fw.cc = [](const Dataset& ds, Mode mode) {
        const bool blocked =
            mode == Mode::kOptimized && ds.g().is_directed() &&
            ds.distribution == graph::DegreeDistribution::kPower;
        return blocked ? galoislite::cc_afforest_edge_blocked(ds.g())
                       : galoislite::cc_afforest(ds.g());
    };
    fw.pr = [](const Dataset& ds, Mode) {
        return galoislite::pagerank_gauss_seidel(ds.g());
    };
    fw.bc = [use_async](const Dataset& ds,
                        const std::vector<vid_t>& sources, Mode mode) {
        return use_async(ds, mode) ? galoislite::bc_async(ds.g(), sources)
                                   : galoislite::bc_sync(ds.g(), sources);
    };
    fw.tc = [](const Dataset& ds, Mode mode) {
        if (mode == Mode::kOptimized) {
            // Relabel time excluded (paper: "we excluded the time to
            // preprocess and relabel the graph").
            return gapref::tc_no_relabel(ds.g_relabeled());
        }
        return galoislite::tc(ds.g_undirected());
    };
    return fw;
}

Framework
make_nwgraph()
{
    // NWGraph's team changed nothing per graph ("low requirement for
    // parameter tuning ... a feature of their library").
    Framework fw;
    fw.name = "NWGraph";
    fw.bfs = [](const Dataset& ds, vid_t src, Mode) {
        return nwlite::bfs(nwlite::adjacency(ds.g()), src);
    };
    fw.sssp = [](const Dataset& ds, vid_t src, Mode) {
        return nwlite::delta_stepping(nwlite::weighted_adjacency(ds.wg()), src,
                                      ds.delta);
    };
    fw.cc = [](const Dataset& ds, Mode) {
        return nwlite::afforest(nwlite::adjacency(ds.g()));
    };
    fw.pr = [](const Dataset& ds, Mode) {
        return nwlite::pagerank(nwlite::adjacency(ds.g()));
    };
    fw.bc = [](const Dataset& ds, const std::vector<vid_t>& sources, Mode) {
        return nwlite::brandes_bc(nwlite::adjacency(ds.g()), sources);
    };
    fw.tc = [](const Dataset& ds, Mode) {
        return nwlite::triangle_count(nwlite::adjacency(ds.g_undirected()));
    };
    return fw;
}

Framework
make_graphit()
{
    // GraphIt keeps one algorithm but swaps schedules: Baseline uses the
    // default schedule everywhere; Optimized specializes per graph
    // (push-only BFS on Road, short-circuited CC on high diameter, cache-
    // tiled PR except on Web, sparse BC frontier on Road).
    Framework fw;
    fw.name = "GraphIt";
    fw.bfs = [](const Dataset& ds, vid_t src, Mode mode) {
        graphitlite::Schedule sched;
        if (mode == Mode::kOptimized && ds.high_diameter) {
            sched.direction = graphitlite::Direction::kPush;
        }
        return graphitlite::bfs(ds.g(), src, sched);
    };
    fw.sssp = [](const Dataset& ds, vid_t src, Mode) {
        graphitlite::Schedule sched; // bucket fusion always on
        return graphitlite::sssp(ds.wg(), src, ds.delta, sched);
    };
    fw.cc = [](const Dataset& ds, Mode mode) {
        graphitlite::Schedule sched;
        sched.short_circuit = mode == Mode::kOptimized && ds.high_diameter;
        return graphitlite::cc_label_prop(ds.g(), sched);
    };
    fw.pr = [](const Dataset& ds, Mode mode) {
        graphitlite::Schedule sched;
        if (mode == Mode::kOptimized && ds.name != "Web")
            sched.num_segments = 8;
        return graphitlite::pagerank(ds.g(), 0.85, 1e-4, 100, sched);
    };
    fw.bc = [](const Dataset& ds, const std::vector<vid_t>& sources,
               Mode mode) {
        graphitlite::Schedule sched;
        sched.frontier = graphitlite::FrontierRep::kBitvector;
        if (mode == Mode::kOptimized && ds.high_diameter)
            sched.frontier = graphitlite::FrontierRep::kSparse;
        return graphitlite::bc(ds.g(), sources, sched);
    };
    fw.tc = [](const Dataset& ds, Mode) {
        return graphitlite::tc(ds.g_undirected());
    };
    return fw;
}

Framework
make_gkc()
{
    // GKC's heuristics are internal (degree-skew-driven relabel, hardware-
    // aware buffer sizes); both modes run the same code, as its Optimized
    // gains in the paper came from hyperthreading.
    Framework fw;
    fw.name = "GKC";
    fw.bfs = [](const Dataset& ds, vid_t src, Mode) {
        return gkc::bfs(ds.g(), src);
    };
    fw.sssp = [](const Dataset& ds, vid_t src, Mode) {
        return gkc::sssp(ds.wg(), src, ds.delta);
    };
    fw.cc = [](const Dataset& ds, Mode) { return gkc::cc_sv(ds.g()); };
    fw.pr = [](const Dataset& ds, Mode) { return gkc::pagerank(ds.g()); };
    fw.bc = [](const Dataset& ds, const std::vector<vid_t>& sources, Mode) {
        return gkc::bc(ds.g(), sources);
    };
    fw.tc = [](const Dataset& ds, Mode) {
        return gkc::tc(ds.g_undirected());
    };
    return fw;
}

} // namespace

std::vector<Framework>
make_frameworks()
{
    std::vector<Framework> frameworks;
    frameworks.push_back(make_gap_reference());
    frameworks.push_back(make_suitesparse());
    frameworks.push_back(make_galois());
    frameworks.push_back(make_nwgraph());
    frameworks.push_back(make_graphit());
    frameworks.push_back(make_gkc());
    return frameworks;
}

} // namespace gm::harness
