#include "gm/harness/baseline_export.hh"

namespace gm::harness
{

perf::BaselineCell
to_baseline_cell(const CellResult& cell, const std::string& mode,
                 const std::string& framework, const std::string& kernel,
                 const std::string& graph)
{
    perf::BaselineCell out;
    out.mode = mode;
    out.framework = framework;
    out.kernel = kernel;
    out.graph = graph;
    out.seconds = cell.trial_seconds;
    out.verified = cell.verified;
    out.failure = to_string(cell.failure);
    // Key workload counters only: enough to notice "same time, 3x the
    // edges traversed" drift without dragging the whole metrics blob
    // into every baseline.
    for (const char* key :
         {"iterations", "edges_traversed", "frontier_peak"}) {
        if (const std::uint64_t v = cell.metrics.counter_or(key); v != 0)
            out.counters[key] = v;
    }
    return out;
}

void
append_baseline_cells(perf::Baseline& baseline, const ResultsCube& cube,
                      Mode mode)
{
    for (std::size_t f = 0; f < cube.framework_names.size(); ++f) {
        for (Kernel kernel : kAllKernels) {
            for (std::size_t g = 0; g < cube.graph_names.size(); ++g) {
                baseline.cells.push_back(to_baseline_cell(
                    cube.at(f, kernel, g), to_string(mode),
                    cube.framework_names[f], to_string(kernel),
                    cube.graph_names[g]));
            }
        }
    }
}

} // namespace gm::harness
