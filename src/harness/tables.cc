#include "gm/harness/tables.hh"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "gm/stats/stats.hh"
#include "gm/support/log.hh"

namespace gm::harness
{

namespace
{

void
hline(std::ostream& os, int width)
{
    os << std::string(static_cast<std::size_t>(width), '-') << "\n";
}

} // namespace

void
print_table1(std::ostream& os, const DatasetSuite& suite)
{
    os << "TABLE I: GRAPHS USED FOR EVALUATION (scaled-down analogues)\n";
    hline(os, 96);
    os << std::left << std::setw(9) << "Name" << std::setw(13) << "#Vertices"
       << std::setw(13) << "#Edges" << std::setw(10) << "Directed"
       << std::setw(9) << "Degree" << std::setw(16) << "DegreeDistrib"
       << std::setw(14) << "ApproxDiam" << "\n";
    hline(os, 96);
    for (const auto& ds : suite.datasets) {
        const double degree =
            static_cast<double>(ds->g().num_edges_directed()) /
            ds->g().num_vertices();
        os << std::left << std::setw(9) << ds->name << std::setw(13)
           << ds->g().num_vertices() << std::setw(13)
           << ds->g().num_edges_directed() << std::setw(10)
           << (ds->g().is_directed() ? "Y" : "N")
           << std::setw(9) << std::fixed << std::setprecision(1) << degree
           << std::setw(16) << graph::to_string(ds->distribution)
           << std::setw(14) << ds->approx_diameter << "\n";
    }
    hline(os, 96);
}

void
print_table4(std::ostream& os, const ResultsCube& baseline,
             const ResultsCube& optimized)
{
    os << "TABLE IV: FASTEST TIMES (seconds); letter = winning framework\n";
    auto print_half = [&](const ResultsCube& cube, const char* label) {
        os << "\n  " << label << "\n";
        os << "  " << std::left << std::setw(8) << "Kernel";
        for (const auto& graph_name : cube.graph_names)
            os << std::setw(16) << graph_name;
        os << "\n";
        for (Kernel kernel : kAllKernels) {
            os << "  " << std::left << std::setw(8) << to_string(kernel);
            for (std::size_t g = 0; g < cube.graph_names.size(); ++g) {
                double best = 0;
                std::string winner = "-";
                bool first = true;
                for (std::size_t f = 0; f < cube.framework_names.size();
                     ++f) {
                    const CellResult& cell = cube.at(f, kernel, g);
                    if (!cell.completed() || !cell.verified)
                        continue;
                    // Best-of-trials: the minimum is the robust location
                    // estimate under scheduler interference.
                    if (first || cell.best_seconds < best) {
                        best = cell.best_seconds;
                        winner = cube.framework_names[f];
                        first = false;
                    }
                }
                std::ostringstream val;
                if (first) {
                    // Nobody produced a verified timing for this cell.
                    val << "DNF";
                } else {
                    val << std::fixed << std::setprecision(4) << best << " "
                        << winner.substr(0, 4);
                }
                os << std::setw(16) << val.str();
            }
            os << "\n";
        }
    };
    print_half(baseline, "Baseline (seconds)");
    print_half(optimized, "Optimized (seconds)");
}

void
print_table5(std::ostream& os, const ResultsCube& baseline,
             const ResultsCube& optimized)
{
    os << "TABLE V: SPEEDUP OVER THE GAP REFERENCE "
          "(100% = same speed, >100% = faster than GAP)\n";
    auto print_half = [&](const ResultsCube& cube, const char* label) {
        os << "\n  " << label << "\n";
        for (std::size_t f = 0; f < cube.framework_names.size(); ++f) {
            if (f == kGapIndex)
                continue;
            os << "  " << cube.framework_names[f] << "\n";
            os << "    " << std::left << std::setw(8) << "Kernel";
            for (const auto& graph_name : cube.graph_names)
                os << std::setw(12) << graph_name;
            os << "\n";
            for (Kernel kernel : kAllKernels) {
                os << "    " << std::left << std::setw(8)
                   << to_string(kernel);
                for (std::size_t g = 0; g < cube.graph_names.size(); ++g) {
                    const CellResult& gap = cube.at(kGapIndex, kernel, g);
                    const CellResult& cell = cube.at(f, kernel, g);
                    std::ostringstream val;
                    if (cell.failure != FailureKind::kNone) {
                        // DNF cells show why (T/O, FAULT, WRONG, ...).
                        val << short_label(cell.failure);
                    } else if (!cell.completed() || !gap.completed() ||
                               !cell.verified || cell.best_seconds <= 0) {
                        val << "n/a";
                    } else {
                        val << std::fixed << std::setprecision(1)
                            << 100.0 * gap.best_seconds / cell.best_seconds
                            << "%";
                    }
                    os << std::setw(12) << val.str();
                }
                os << "\n";
            }
        }
    };
    print_half(baseline, "Baseline (speedup over GAP reference)");
    print_half(optimized, "Optimized (speedup over GAP reference)");
}

namespace
{

/** "# fingerprint: {...}" comment header (readers skipping '#' lines
 *  keep working; attribution survives the file being copied around). */
void
write_fingerprint_comment(std::ostream& out,
                          const support::EnvFingerprint* fingerprint)
{
    if (fingerprint != nullptr) {
        out << "# fingerprint: " << support::fingerprint_json(*fingerprint)
            << "\n";
    }
}

} // namespace

support::Status
write_csv(const std::string& path, const ResultsCube& cube, Mode mode,
          const support::EnvFingerprint* fingerprint)
{
    std::ofstream out(path);
    if (!out) {
        return support::Status(support::StatusCode::kInvalidInput,
                               "cannot write csv: " + path);
    }
    write_fingerprint_comment(out, fingerprint);
    // avg_seconds keeps its historical name; the robust spread columns
    // (min/median/stddev/cv over the raw trial vector) sit next to it.
    out << "mode,framework,kernel,graph,best_seconds,avg_seconds,"
           "min_seconds,median_seconds,stddev_seconds,cv,trials,"
           "verified,failure,attempts,graph_peak_bytes,"
           "iterations,edges_traversed,frontier_peak,parallel_efficiency\n";
    for (std::size_t f = 0; f < cube.framework_names.size(); ++f) {
        for (Kernel kernel : kAllKernels) {
            for (std::size_t g = 0; g < cube.graph_names.size(); ++g) {
                const CellResult& cell = cube.at(f, kernel, g);
                const std::size_t peak =
                    g < cube.graph_peak_bytes.size()
                        ? cube.graph_peak_bytes[g]
                        : 0;
                const stats::Summary s =
                    stats::summarize(cell.trial_seconds);
                // Workload columns come from the last successful trial's
                // trace session; cells run without metrics leave them 0.
                const obs::TrialMetrics& m = cell.metrics;
                out << to_string(mode) << "," << cube.framework_names[f]
                    << "," << to_string(kernel) << ","
                    << cube.graph_names[g] << "," << cell.best_seconds
                    << "," << cell.avg_seconds << "," << s.min << ","
                    << s.median << "," << s.stddev << "," << s.cv << ","
                    << cell.trials << ","
                    << (cell.verified ? 1 : 0) << ","
                    << to_string(cell.failure) << "," << cell.attempts
                    << "," << peak << "," << m.counter_or("iterations")
                    << "," << m.counter_or("edges_traversed") << ","
                    << m.counter_or("frontier_peak") << ","
                    << m.parallel_efficiency << "\n";
            }
        }
    }
    if (!out) {
        return support::Status(support::StatusCode::kInvalidInput,
                               "write error on csv: " + path);
    }
    return support::Status::ok();
}

namespace
{

std::string
human_bytes(std::size_t bytes)
{
    std::ostringstream os;
    const double mib = static_cast<double>(bytes) / (1024.0 * 1024.0);
    if (mib >= 1.0)
        os << std::fixed << std::setprecision(1) << mib << " MiB";
    else
        os << std::fixed << std::setprecision(1)
           << static_cast<double>(bytes) / 1024.0 << " KiB";
    return os.str();
}

} // namespace

void
print_memory_report(std::ostream& os, const DatasetSuite& suite)
{
    os << "GRAPH ARTIFACT MEMORY (owned bytes; aliases and zero-copy views "
          "cost nothing)\n";
    hline(os, 78);
    os << std::left << std::setw(9) << "Graph" << std::setw(13) << "Artifact"
       << std::setw(12) << "Resident" << std::setw(12) << "Bytes"
       << std::setw(12) << "Build(s)" << std::setw(8) << "Builds" << "\n";
    hline(os, 78);
    for (const auto& ds : suite.datasets) {
        for (const auto& art : ds->store()->artifacts()) {
            std::ostringstream state;
            state << (art.resident ? "yes" : "no")
                  << (art.alias ? " (alias)" : "");
            os << std::left << std::setw(9) << ds->name << std::setw(13)
               << art.name << std::setw(12) << state.str() << std::setw(12)
               << human_bytes(art.bytes) << std::setw(12) << std::fixed
               << std::setprecision(4) << art.build_seconds << std::setw(8)
               << art.builds << "\n";
        }
        const std::size_t widened = grb::lagraph::widened_grb_bytes(ds->g());
        os << std::left << std::setw(9) << ds->name
           << "resident " << human_bytes(ds->bytes_resident())
           << "; widened 64-bit GraphBLAS copies would add "
           << human_bytes(widened) << "\n";
        hline(os, 78);
    }
}

support::Status
write_memory_csv(const std::string& path, const DatasetSuite& suite,
                 const support::EnvFingerprint* fingerprint)
{
    std::ofstream out(path);
    if (!out) {
        return support::Status(support::StatusCode::kInvalidInput,
                               "cannot write csv: " + path);
    }
    write_fingerprint_comment(out, fingerprint);
    out << "graph,artifact,resident,alias,bytes,build_seconds,builds\n";
    for (const auto& ds : suite.datasets) {
        for (const auto& art : ds->store()->artifacts()) {
            out << ds->name << "," << art.name << ","
                << (art.resident ? 1 : 0) << "," << (art.alias ? 1 : 0)
                << "," << art.bytes << "," << art.build_seconds << ","
                << art.builds << "\n";
        }
    }
    if (!out) {
        return support::Status(support::StatusCode::kInvalidInput,
                               "write error on csv: " + path);
    }
    return support::Status::ok();
}

} // namespace gm::harness
