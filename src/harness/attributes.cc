/**
 * @file
 * Static registries for Table II (framework attributes) and Table III
 * (algorithm choices), mirroring the paper's qualitative tables and kept
 * in sync with what the analogue libraries in this repository actually
 * implement.
 */
#include <iomanip>
#include <ostream>

#include "gm/harness/tables.hh"

namespace gm::harness
{

namespace
{

struct AttributeRow
{
    const char* attribute;
    const char* gap;
    const char* gkc;
    const char* galois;
    const char* nwgraph;
    const char* suitesparse;
    const char* graphit;
};

constexpr AttributeRow kAttributes[] = {
    {"Type", "direct implementations", "direct implementations",
     "generic high-level library", "header-only generic library",
     "high-level library (sparse linear algebra)",
     "schedule-driven library (DSL analogue)"},
    {"Graph structure", "outgoing & incoming edges",
     "outgoing & incoming edges", "outgoing and/or incoming edges",
     "adjacency as range of ranges",
     "adjacency matrix + transpose, 64-bit indices",
     "outgoing & incoming edges w/ optional tiling"},
    {"Programming abstraction", "vertex-centric", "arbitrary (hand kernels)",
     "operator formulation (worklists)",
     "range-centric generic algorithms", "sparse linear algebra",
     "vertex/edge-centric w/ schedules"},
    {"Execution synchronization", "level-synchronous",
     "algorithm-specific, level-synchronous",
     "level-synchronous or asynchronous",
     "algorithm-specific, level-synchronous", "level-synchronous",
     "level-synchronous"},
    {"Index width", "32-bit", "32-bit", "32-bit", "32-bit", "64-bit",
     "32-bit"},
    {"Intended users", "researchers, benchmarkers", "application developers",
     "graph domain experts", "practicing C++ programmers",
     "graph/matrix domain experts", "graph domain experts"},
};

struct AlgorithmRow
{
    const char* task;
    const char* gap;
    const char* gkc;
    const char* galois;
    const char* nwgraph;
    const char* suitesparse;
    const char* graphit;
};

constexpr AlgorithmRow kAlgorithms[] = {
    {"BFS", "Direction-optimizing", "Direction-optimizing (3)",
     "Direction-optimizing (4)", "Direction-optimizing",
     "Direction-optimizing", "Direction-optimizing"},
    {"SSSP", "Delta-stepping (1)", "Delta-stepping", "Delta-stepping (4)",
     "Delta-stepping", "Delta-stepping", "Delta-stepping (1)"},
    {"CC", "Afforest", "Shiloach-Vishkin hybrid", "Afforest (4)", "Afforest",
     "FastSV", "Label propagation"},
    {"PR", "Jacobi SpMV", "Gauss-Seidel SpMV (3)", "Gauss-Seidel SpMV",
     "Gauss-Seidel SpMV", "Jacobi SpMV", "Jacobi SpMV"},
    {"BC", "Brandes", "Brandes", "Brandes (4)", "Brandes", "Brandes",
     "Brandes"},
    {"TC", "Order invariant (2)", "Lee & Low (2,3)", "Order invariant (2)",
     "Order invariant (2)", "Order invariant (2)", "Order invariant (2)"},
};

constexpr const char* kFootnotes =
    "  footnotes: 1 - bucket fusion, 2 - heuristic-controlled relabeling,\n"
    "             3 - unrolled/SIMD-style kernels, 4 - additional "
    "asynchronous variant\n";

void
print_matrix_header(std::ostream& os)
{
    os << std::left << std::setw(26) << "" << std::setw(26) << "GAP"
       << std::setw(26) << "GKC" << std::setw(30) << "Galois"
       << std::setw(30) << "NWGraph" << std::setw(44) << "SuiteSparse"
       << "GraphIt" << "\n";
}

} // namespace

void
print_table2(std::ostream& os)
{
    os << "TABLE II: MAIN ATTRIBUTES OF FRAMEWORKS CONSIDERED\n";
    print_matrix_header(os);
    for (const auto& row : kAttributes) {
        os << std::left << std::setw(26) << row.attribute << std::setw(26)
           << row.gap << std::setw(26) << row.gkc << std::setw(30)
           << row.galois << std::setw(30) << row.nwgraph << std::setw(44)
           << row.suitesparse << row.graphit << "\n";
    }
}

void
print_table3(std::ostream& os)
{
    os << "TABLE III: ALGORITHMS USED BY EACH FRAMEWORK\n";
    print_matrix_header(os);
    for (const auto& row : kAlgorithms) {
        os << std::left << std::setw(26) << row.task << std::setw(26)
           << row.gap << std::setw(26) << row.gkc << std::setw(30)
           << row.galois << std::setw(30) << row.nwgraph << std::setw(44)
           << row.suitesparse << row.graphit << "\n";
    }
    os << kFootnotes;
}

} // namespace gm::harness
