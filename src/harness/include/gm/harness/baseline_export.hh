/**
 * @file
 * Bridge from harness results to gm::perf baselines: flatten a
 * ResultsCube's cells (raw trial vectors + key workload counters) into
 * BaselineCell records that tools/perf_gate can compare across runs.
 */
#pragma once

#include "gm/harness/runner.hh"
#include "gm/perf/baseline.hh"

namespace gm::harness
{

/** Append every cell of @p cube (run under @p mode) to @p baseline. */
void append_baseline_cells(perf::Baseline& baseline,
                           const ResultsCube& cube, Mode mode);

/** Convert one cell (used by tests and the single-kernel drivers). */
perf::BaselineCell to_baseline_cell(const CellResult& cell,
                                    const std::string& mode,
                                    const std::string& framework,
                                    const std::string& kernel,
                                    const std::string& graph);

} // namespace gm::harness
