/**
 * @file
 * Benchmark runner implementing the GAP trial protocol: per (framework,
 * kernel, graph, mode) cell, run N trials with rotating sources, verify
 * every result against the spec verifiers, and record the timings.
 * Unverified results are never recorded as timings — the paper calls for
 * exactly this kind of formal validation.
 */
#pragma once

#include <vector>

#include "gm/harness/dataset.hh"
#include "gm/harness/framework.hh"

namespace gm::harness
{

/** Timing summary of one benchmark cell. */
struct CellResult
{
    double best_seconds = 0;
    double avg_seconds = 0;
    int trials = 0;
    bool verified = false;
    bool supported = true;
};

/** results[framework][kernel][graph]. */
struct ResultsCube
{
    std::vector<std::string> framework_names;
    std::vector<std::string> graph_names;
    // Indexed [framework][kernel][graph].
    std::vector<std::vector<std::vector<CellResult>>> cells;

    const CellResult&
    at(std::size_t framework, Kernel kernel, std::size_t graph) const
    {
        return cells[framework][static_cast<std::size_t>(kernel)][graph];
    }
};

/** Options for a full sweep. */
struct RunOptions
{
    int trials = 2;
    bool verify = true;
    /** Skip verification of kernels whose serial oracle is expensive when
     *  the result was already verified once for this (framework, graph). */
    bool verify_first_trial_only = true;
};

/** Run every framework x kernel x graph cell under @p mode. */
ResultsCube run_suite(const DatasetSuite& suite,
                      const std::vector<Framework>& frameworks, Mode mode,
                      const RunOptions& opts = {});

/** Run a single cell (used by tests and the micro benchmarks). */
CellResult run_cell(const Dataset& ds, const Framework& fw, Kernel kernel,
                    Mode mode, const RunOptions& opts = {});

} // namespace gm::harness
