/**
 * @file
 * Benchmark runner implementing the GAP trial protocol: per (framework,
 * kernel, graph, mode) cell, run N trials with rotating sources, verify
 * every result against the spec verifiers, and record the timings.
 * Unverified results are never recorded as timings — the paper calls for
 * exactly this kind of formal validation.
 *
 * The runner is fault tolerant: every trial executes on a
 * watchdog-supervised worker with a configurable deadline, exceptions are
 * caught per trial, transient failures (injected faults, kernel errors)
 * are retried with backoff up to a capped attempt count, and a failed cell
 * becomes a DNF entry with a FailureKind instead of killing the sweep.
 * run_suite can additionally stream every completed cell to a JSONL
 * checkpoint and skip cells already present in a resume file.
 */
#pragma once

#include <string>
#include <vector>

#include "gm/harness/dataset.hh"
#include "gm/harness/framework.hh"
#include "gm/obs/metrics.hh"
#include "gm/support/status.hh"

namespace gm::harness
{

/** Why a cell did not finish (DNF); kNone means it completed. */
enum class FailureKind
{
    kNone = 0,
    kTimeout,       ///< watchdog deadline exceeded
    kKernelError,   ///< kernel threw / crashed internally
    kWrongResult,   ///< result failed spec verification
    kUnsupported,   ///< framework does not implement the kernel
    kFaultInjected, ///< GM_FAULTS fault survived all retry attempts
    kInvalidInput,  ///< dataset/input rejected by the framework
};

/** Long name ("timeout") — stable, used in checkpoints and CSVs. */
std::string to_string(FailureKind kind);

/** Short table label ("T/O", "ERR", "WRONG", ...); "" for kNone. */
const char* short_label(FailureKind kind);

/** Parse to_string()'s output back; kKernelError if unknown. */
FailureKind failure_kind_from_string(const std::string& name);

/** Map a StatusCode from a failed trial onto the cell taxonomy. */
FailureKind failure_kind_from_status(support::StatusCode code);

/** Timing summary of one benchmark cell. */
struct CellResult
{
    double best_seconds = 0;
    double avg_seconds = 0;
    int trials = 0;          ///< completed (timed) trials
    bool verified = false;
    bool supported = true;
    FailureKind failure = FailureKind::kNone;
    std::string failure_message;
    int attempts = 0;        ///< total trial attempts including retries

    /** Wall seconds of every completed trial, in completion order.
     *  Warm-up trials never appear here.  This is the raw sample the
     *  perf pipeline (gm::stats / gm::perf) summarizes and tests;
     *  best/avg above are derived conveniences, not the record. */
    std::vector<double> trial_seconds;

    /** Workload metrics of the last successful trial (empty when metrics
     *  collection was disabled or no trial completed). */
    obs::TrialMetrics metrics;

    /** True when the cell produced a usable timing. */
    bool
    completed() const
    {
        return failure == FailureKind::kNone && trials > 0;
    }
};

/** results[framework][kernel][graph]. */
struct ResultsCube
{
    std::vector<std::string> framework_names;
    std::vector<std::string> graph_names;
    // Indexed [framework][kernel][graph].
    std::vector<std::vector<std::vector<CellResult>>> cells;
    /** Peak resident artifact bytes per graph, observed right after that
     *  graph's cells finished (empty for cubes built before this field). */
    std::vector<std::size_t> graph_peak_bytes;

    const CellResult&
    at(std::size_t framework, Kernel kernel, std::size_t graph) const
    {
        return cells[framework][static_cast<std::size_t>(kernel)][graph];
    }
};

/** Options for a full sweep. */
struct RunOptions
{
    int trials = 2;

    /** Untimed warm-up trials before the timed ones.  Excluded from all
     *  statistics (trials/trial_seconds/avg/best) but visible in Chrome
     *  traces under a "warmup" span; 0 preserves cold-cache timing. */
    int warmup = 0;

    bool verify = true;
    /** Skip verification of kernels whose serial oracle is expensive when
     *  the result was already verified once for this (framework, graph). */
    bool verify_first_trial_only = true;

    /** Per-trial watchdog deadline in ms; 0 disables supervision. */
    int trial_timeout_ms = 0;
    /** Attempts per trial for transient failures (faults, kernel errors). */
    int max_attempts = 2;
    /** Base backoff before a retry; doubles per extra attempt. */
    int retry_backoff_ms = 10;

    /** When non-empty, stream each completed cell here as JSONL. */
    std::string checkpoint_path;
    /** When non-empty, skip cells already recorded in this JSONL file. */
    std::string resume_path;

    /** Drop each graph's derived artifacts once all of its cells are
     *  done, so a sweep keeps at most one graph's forms resident. */
    bool evict_per_graph = false;

    /** Run each trial attempt under a gm::obs::TraceSession and summarize
     *  it into CellResult::metrics (and the v2 checkpoint blob). */
    bool collect_metrics = true;

    /** When non-empty, append one metrics JSONL record per completed
     *  trial (implies metrics collection). */
    std::string metrics_path;

    /** When non-empty, write one Chrome trace_event JSON file per cell
     *  into this directory (implies metrics collection). */
    std::string trace_dir;

    /** True when trials should run under a trace session. */
    bool
    profile_enabled() const
    {
        return collect_metrics || !metrics_path.empty() ||
               !trace_dir.empty();
    }
};

/** Run every framework x kernel x graph cell under @p mode. */
ResultsCube run_suite(const DatasetSuite& suite,
                      const std::vector<Framework>& frameworks, Mode mode,
                      const RunOptions& opts = {});

/** Run a single cell (used by tests and the micro benchmarks). */
CellResult run_cell(const Dataset& ds, const Framework& fw, Kernel kernel,
                    Mode mode, const RunOptions& opts = {});

} // namespace gm::harness
