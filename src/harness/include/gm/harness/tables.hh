/**
 * @file
 * Formatting of the paper's tables from harness results.
 *
 * Table I  — input-graph properties.
 * Table II — framework attribute matrix (static registry).
 * Table III— algorithm choices per framework/kernel (static registry).
 * Table IV — fastest time per kernel/graph with the winning framework.
 * Table V  — per-framework speedup over the GAP reference, as percentages.
 */
#pragma once

#include <iosfwd>
#include <string>

#include "gm/harness/dataset.hh"
#include "gm/harness/runner.hh"
#include "gm/support/fingerprint.hh"
#include "gm/support/status.hh"

namespace gm::harness
{

/** Print Table I (graph properties) for @p suite. */
void print_table1(std::ostream& os, const DatasetSuite& suite);

/** Print Table II (framework attributes). */
void print_table2(std::ostream& os);

/** Print Table III (algorithms used by each framework). */
void print_table3(std::ostream& os);

/** Print Table IV (fastest times, both modes, with winners). */
void print_table4(std::ostream& os, const ResultsCube& baseline,
                  const ResultsCube& optimized);

/** Print Table V (speedups over the GAP reference, both modes). */
void print_table5(std::ostream& os, const ResultsCube& baseline,
                  const ResultsCube& optimized);

/**
 * Write one cube as CSV.  Columns: the historical set
 * (best_seconds/avg_seconds/trials/verified/...) plus the robust spread
 * columns (min/median/stddev/cv over the raw trial vector; avg_seconds
 * keeps its name for existing parsers).  When @p fingerprint is non-null
 * it is embedded as leading "# fingerprint: {...}" comment lines so an
 * orphaned results file stays attributable.  Fails with a Status instead
 * of aborting.
 */
support::Status write_csv(const std::string& path, const ResultsCube& cube,
                          Mode mode,
                          const support::EnvFingerprint* fingerprint =
                              nullptr);

/** Print the per-graph artifact memory report: one row per artifact
 *  (base, weighted, undirected, relabeled, grb, grb+weights) with
 *  residency, owned bytes, build time, and build count, plus the bytes
 *  the widened 64-bit GraphBLAS copies would have cost. */
void print_memory_report(std::ostream& os, const DatasetSuite& suite);

/** Write the memory report as CSV
 *  (graph,artifact,resident,alias,bytes,build_seconds,builds), with the
 *  same optional fingerprint comment header as write_csv. */
support::Status write_memory_csv(const std::string& path,
                                 const DatasetSuite& suite,
                                 const support::EnvFingerprint* fingerprint =
                                     nullptr);

} // namespace gm::harness
