/**
 * @file
 * The framework registry: a uniform six-kernel interface over the six
 * evaluated systems, with per-mode (Baseline vs Optimized) behaviour wired
 * to match what each team did in the paper.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gm/harness/dataset.hh"

namespace gm::harness
{

/** The six GAP kernels. */
enum class Kernel { kBFS, kSSSP, kCC, kPR, kBC, kTC };

/** All kernels in Table IV/V row order. */
inline constexpr Kernel kAllKernels[] = {Kernel::kBFS, Kernel::kSSSP,
                                         Kernel::kCC,  Kernel::kPR,
                                         Kernel::kBC,  Kernel::kTC};

/** Short display name of a kernel. */
std::string to_string(Kernel kernel);

/** Benchmark rule sets, per Section IV of the paper. */
enum class Mode
{
    kBaseline,  ///< no per-graph hand tuning; internal heuristics only
    kOptimized, ///< anything goes, per-graph specialization allowed
};

/** @copydoc to_string(Kernel) */
std::string to_string(Mode mode);

/** A framework: name + one entry point per kernel. */
struct Framework
{
    std::string name;

    std::function<std::vector<vid_t>(const Dataset&, vid_t source, Mode)>
        bfs;
    std::function<std::vector<weight_t>(const Dataset&, vid_t source, Mode)>
        sssp;
    std::function<std::vector<vid_t>(const Dataset&, Mode)> cc;
    std::function<std::vector<score_t>(const Dataset&, Mode)> pr;
    std::function<std::vector<score_t>(
        const Dataset&, const std::vector<vid_t>& sources, Mode)>
        bc;
    std::function<std::uint64_t(const Dataset&, Mode)> tc;
};

/** Index of the GAP reference framework in make_frameworks()'s result. */
inline constexpr std::size_t kGapIndex = 0;

/** Build all six frameworks (GAP reference first). */
std::vector<Framework> make_frameworks();

} // namespace gm::harness
