/**
 * @file
 * Crash-safe sweep checkpointing: every completed benchmark cell is
 * appended to a JSONL file (one self-contained JSON object per line,
 * flushed immediately), so a killed sweep loses at most the cell in
 * flight.  On restart, run_suite(--resume) loads the file and skips every
 * cell already present; a torn final line (the crash signature) is
 * ignored.
 */
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "gm/harness/framework.hh"
#include "gm/harness/runner.hh"
#include "gm/support/status.hh"

namespace gm::harness
{

/** One checkpointed cell: its coordinates plus the full result. */
struct CheckpointRecord
{
    std::string mode;      ///< to_string(Mode)
    std::string framework;
    std::string kernel;    ///< to_string(Kernel)
    std::string graph;
    CellResult cell;
};

/** Serialize @p record as a single JSON line (no trailing newline). */
std::string checkpoint_line(const CheckpointRecord& record);

/**
 * Parse one JSONL line.  Returns kCorruptData for torn/malformed lines so
 * the loader can skip them.
 */
support::StatusOr<CheckpointRecord>
parse_checkpoint_line(const std::string& line);

/**
 * Load all intact records from @p path.  Malformed lines (typically a
 * partially-written final line after a crash) are skipped with a warning;
 * a missing file is an error.
 */
support::StatusOr<std::vector<CheckpointRecord>>
load_checkpoint(const std::string& path);

/** Append @p record to @p out and flush (one fsync-free durable-ish line). */
void append_checkpoint(std::ostream& out, const CheckpointRecord& record);

} // namespace gm::harness
