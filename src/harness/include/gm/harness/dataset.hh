/**
 * @file
 * Benchmark datasets: the five GAP input-graph classes.  A Dataset is a
 * thin facade over a shared gm::store::GraphStore — derived forms
 * (weighted, symmetrized, relabeled, GraphBLAS packaging) are built
 * lazily, once, thread-safely, on first access instead of eagerly at
 * construction.  Per the GAP rules, building a framework's native graph
 * format is not timed; the runner warms the forms a kernel needs before
 * starting the trial timer, so laziness never leaks into timings.
 *
 * Lifetime rule: references returned by the form accessors stay valid
 * until evict_derived() drops the store's cache.  Code that must hold a
 * form across eviction (or across datasets in a streaming sweep) should
 * take a shared_ptr from store() instead.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gm/graph/csr.hh"
#include "gm/graph/stats.hh"
#include "gm/grb/lagraph.hh"
#include "gm/store/graph_store.hh"
#include "gm/support/status.hh"

namespace gm::harness
{

/** One benchmark input graph; derived forms come lazily from its store. */
class Dataset
{
  public:
    std::string name;

    graph::DegreeDistribution distribution =
        graph::DegreeDistribution::kBounded;
    vid_t approx_diameter = 0;
    /** Ground truth: generated as a high-diameter topology. */
    bool high_diameter = false;
    /** Per-graph SSSP delta (GAP explicitly allows tuning this). */
    weight_t delta = 64;

    /** Deterministic non-isolated benchmark sources. */
    std::vector<vid_t> sources;

    Dataset() = default;
    explicit Dataset(std::shared_ptr<store::GraphStore> store)
        : store_(std::move(store))
    {
    }

    /** Native graph (out + in edges). */
    const graph::CSRGraph&
    g() const
    {
        GM_ASSERT(store_ != nullptr, "dataset has no graph store");
        return store_->base();
    }

    /** Weighted form for SSSP. */
    const graph::WCSRGraph& wg() const { return *store()->weighted(); }

    /** Symmetrized form for TC (aliases g() when already undirected). */
    const graph::CSRGraph&
    g_undirected() const
    {
        return *store()->undirected();
    }

    /** Degree-relabeled undirected form; Optimized-mode TC may use it
     *  without paying the relabel cost (as the Galois team did). */
    const graph::CSRGraph& g_relabeled() const { return *store()->relabeled(); }

    /** GraphBLAS packaging (zero-copy adjacency views, no weights). */
    const grb::lagraph::GrbGraph& grb() const { return *store()->grb(); }

    /** GraphBLAS packaging with the weighted matrix attached (SSSP). */
    const grb::lagraph::GrbGraph&
    grb_weighted() const
    {
        return *store()->grb_weighted();
    }

    /** The underlying artifact store (shared across Dataset copies). */
    const std::shared_ptr<store::GraphStore>&
    store() const
    {
        GM_ASSERT(store_ != nullptr, "dataset has no graph store");
        return store_;
    }

    /** Owned bytes currently resident across this dataset's artifacts. */
    std::size_t bytes_resident() const { return store()->bytes_resident(); }

    /** Drop cached derived forms (outstanding handles stay valid). */
    void evict_derived() const { store()->evict_derived(); }

  private:
    std::shared_ptr<store::GraphStore> store_;
};

/** The five-graph suite. */
struct DatasetSuite
{
    std::vector<std::shared_ptr<Dataset>> datasets;

    const Dataset& operator[](std::size_t i) const { return *datasets[i]; }
    std::size_t size() const { return datasets.size(); }

    /** Owned bytes resident across every dataset's artifacts. */
    std::size_t
    bytes_resident() const
    {
        std::size_t total = 0;
        for (const auto& ds : datasets)
            total += ds->bytes_resident();
        return total;
    }
};

/**
 * Build the GAP-style suite at 2^scale vertices per graph (Road uses a
 * sqrt x sqrt grid of about that size).
 *
 * @param scale       log2 of the vertex count (e.g. 15 -> ~32k vertices).
 * @param num_sources How many benchmark sources to prepare per graph.
 */
DatasetSuite make_gap_suite(int scale, int num_sources = 16,
                            std::uint64_t seed = 2020);

/** Graph names make_gap_suite() would produce, in Table I order, without
 *  generating any graphs (cheap; suite --list-cells uses this). */
std::vector<std::string> gap_suite_graph_names();

/**
 * Build one dataset from an arbitrary graph, recoverably: empty graphs
 * come back as a Status (kInvalidInput) instead of killing the process.
 * Derived forms are lazy, so faults injected into their builders surface
 * at first use — inside the runner's supervised trials, which retry them.
 */
support::StatusOr<Dataset> try_make_dataset(std::string name,
                                            graph::CSRGraph g,
                                            int num_sources,
                                            std::uint64_t seed);

/** Convenience wrapper for trusted inputs (tests/examples): fatal()s on
 *  any error try_make_dataset() would report. */
Dataset make_dataset(std::string name, graph::CSRGraph g, int num_sources,
                     std::uint64_t seed);

} // namespace gm::harness
