/**
 * @file
 * Benchmark datasets: the five GAP input-graph classes, pre-packaged in
 * every format the frameworks need (per the GAP rules, building a
 * framework's native graph format — like storing both edge directions — is
 * not timed; restructuring *during* a kernel is).
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gm/graph/csr.hh"
#include "gm/graph/stats.hh"
#include "gm/grb/lagraph.hh"
#include "gm/support/status.hh"

namespace gm::harness
{

/** One benchmark input graph with all untimed pre-derived forms. */
struct Dataset
{
    std::string name;
    graph::CSRGraph g;             ///< native graph (out + in edges)
    graph::WCSRGraph wg;           ///< weighted form for SSSP
    graph::CSRGraph g_undirected;  ///< symmetrized form for TC
    /** Degree-relabeled undirected form; Optimized-mode TC may use it
     *  without paying the relabel cost (as the Galois team did). */
    graph::CSRGraph g_relabeled;
    /** GraphBLAS packaging (adjacency matrix + transpose + weights). */
    grb::lagraph::GrbGraph grb;

    graph::DegreeDistribution distribution;
    vid_t approx_diameter = 0;
    /** Ground truth: generated as a high-diameter topology. */
    bool high_diameter = false;
    /** Per-graph SSSP delta (GAP explicitly allows tuning this). */
    weight_t delta = 64;

    /** Deterministic non-isolated benchmark sources. */
    std::vector<vid_t> sources;
};

/** The five-graph suite. */
struct DatasetSuite
{
    std::vector<std::shared_ptr<Dataset>> datasets;

    const Dataset& operator[](std::size_t i) const { return *datasets[i]; }
    std::size_t size() const { return datasets.size(); }
};

/**
 * Build the GAP-style suite at 2^scale vertices per graph (Road uses a
 * sqrt x sqrt grid of about that size).
 *
 * @param scale       log2 of the vertex count (e.g. 15 -> ~32k vertices).
 * @param num_sources How many benchmark sources to prepare per graph.
 */
DatasetSuite make_gap_suite(int scale, int num_sources = 16,
                            std::uint64_t seed = 2020);

/**
 * Build one dataset from an arbitrary graph, recoverably: empty graphs and
 * faults injected during the derived-form builds come back as a Status
 * (kInvalidInput / kFaultInjected / ...) instead of killing the process.
 */
support::StatusOr<Dataset> try_make_dataset(std::string name,
                                            graph::CSRGraph g,
                                            int num_sources,
                                            std::uint64_t seed);

/** Convenience wrapper for trusted inputs (tests/examples): fatal()s on
 *  any error try_make_dataset() would report. */
Dataset make_dataset(std::string name, graph::CSRGraph g, int num_sources,
                     std::uint64_t seed);

} // namespace gm::harness
